"""Per-node coordinators: the run-time support of section 7.2.

"The single-node design associates all the executing actors on a node
with a single local coordinator. ... The Coordinator ... provides the main
run-time support and carries out the ActorSpace coordination primitives."

Each coordinator owns:

* the **actor records** of every actor executing on its node;
* a full **replica of the visibility directory**, kept coherent with the
  other coordinators by applying :class:`~repro.runtime.bus.VisibilityOp`
  values in the bus's total order (section 7.3) through a hold-back queue;
* the node's **suspended** pattern messages and **persistent** broadcasts
  (section 5.6) — held at the *origin* coordinator so each suspended
  message is released exactly once;
* the conservative **acquaintance graph** feeding garbage collection.

Message routing needs no directory lookup: a mail address embeds its home
node ("the coordinators automatically determine the location of an actor
given its name"), so the coordinator forwards envelopes straight to the
target's node through the transport.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.actor import ActorRecord, Behavior, as_behavior
from repro.core.actorspace import SpaceRecord
from repro.core.addresses import (
    ActorAddress,
    AddressFactory,
    MailAddress,
    SpaceAddress,
)
from repro.core.capabilities import Capability
from repro.core.errors import (
    ActorSpaceError,
    CapabilityError,
    MailboxClosedError,
    NodeDownError,
    TransportError,
    UnknownAddressError,
    VisibilityCycleError,
)
from repro.core.gc import scan_addresses
from repro.core.manager import SpaceManager, UnmatchedPolicy, default_manager
from repro.core.mailbox import Mailbox
from repro.core.matching import (
    MatchStats,
    ResolutionCache,
    resolve_actors,
    resolve_destination_spaces,
)
from repro.core.messages import Destination, Envelope, Message, Mode, Port
from repro.core.visibility import Directory

from .bus import OpKind, VisibilityOp

if TYPE_CHECKING:  # pragma: no cover
    from .system import ActorSpaceSystem

#: Event priority for actor message processing (after bus traffic).
ACTOR_PRIORITY = 0


def _behavior_addresses(behavior: Behavior):
    """Conservatively enumerate mail addresses held in a behavior's state.

    Covers instance ``__dict__``, ``__slots__``, and — for function
    behaviors — values captured in the function's closure cells: an
    address squirrelled away in a closure must pin its target exactly
    like one stored on an attribute.
    """
    if hasattr(behavior, "__dict__"):
        yield from scan_addresses(vars(behavior))
    for slot in getattr(type(behavior), "__slots__", ()):
        yield from scan_addresses(getattr(behavior, slot, None))
    fn = getattr(behavior, "fn", None)
    closure = getattr(fn, "__closure__", None)
    if closure:
        for cell in closure:
            try:
                yield from scan_addresses(cell.cell_contents)
            except ValueError:  # empty cell
                continue


class Coordinator:
    """Run-time support for one node."""

    def __init__(self, node_id: int, system: "ActorSpaceSystem"):
        self.node_id = node_id
        self.system = system
        self.addresses = AddressFactory(node_id)
        self.directory = Directory()
        #: Memoized pattern resolutions against this node's replica,
        #: invalidated by directory/space epochs.  Suspended and
        #: persistent envelopes re-resolve through it, so a visibility
        #: change that cannot affect an envelope's resolution path costs
        #: an epoch check instead of a fresh DAG walk.
        self.resolution_cache = ResolutionCache()
        #: Per-space policy managers (replicated: constructed from op args).
        self.managers: dict[SpaceAddress, SpaceManager] = {}
        self.actors: dict[ActorAddress, ActorRecord] = {}
        #: Conservative acquaintance sets for local actors.
        self.acquaintances: dict[ActorAddress, set[MailAddress]] = {}
        #: Suspended pattern envelopes originated here: [(envelope,)].
        self.suspended: list[Envelope] = []
        #: Persistent broadcasts originated here: [(envelope, delivered_to)].
        self.persistent: list[tuple[Envelope, set[ActorAddress]]] = []
        #: Bus hold-back state.
        self._next_apply_seq = 0
        self._op_holdback: dict[int, VisibilityOp] = {}
        self._next_origin_seq = 0
        #: Partitioned-plane state (``None``/empty under the classic
        #: single bus, which keeps the unsharded paths byte-identical).
        #: The router is shared system-wide and set by the system when
        #: ``shards > 1``; cursors/holdbacks are per-shard because each
        #: shard carries an independent gap-free sequence.
        self.router = None
        self._origin_seqs: dict[int, int] = {}
        self._shard_cursors: dict[int, int] = {}
        self._shard_holdbacks: dict[int, dict[int, VisibilityOp]] = {}
        #: Ops parked because their containing space is not yet known at
        #: this replica (its ADD_SPACE rides a different shard's stream):
        #: space -> FIFO of waiting ops, drained when the ADD applies.
        self._space_waiting: dict[SpaceAddress, list[VisibilityOp]] = {}
        #: Actors with a processing event already scheduled.
        self._processing_scheduled: set[ActorAddress] = set()
        self.crashed = False

    # ------------------------------------------------------------------
    # Bus plumbing
    # ------------------------------------------------------------------

    def submit_op(self, kind: OpKind, args: dict,
                  on_rejected: Callable[[Exception], None] | None = None,
                  on_applied: Callable[[], None] | None = None) -> None:
        """Send a visibility operation into the bus for global ordering.

        Under a partitioned plane the op is routed to its home shard's
        sequencer instead; cross-cutting kinds (capability bindings,
        purges) fan one copy into every shard's stream, with result
        callbacks attached only to the shard-0 primary.
        """
        if self.router is None:
            op = VisibilityOp(
                kind=kind,
                args=args,
                origin_node=self.node_id,
                origin_seq=self._next_origin_seq,
                on_rejected=on_rejected,
                on_applied=on_applied,
            )
            self._next_origin_seq += 1
            self.system.bus.submit(op)
            return
        if self.router.is_fanned(kind):
            primary = self._submit_to_shard(kind, args, 0, on_rejected, on_applied)
            for shard in range(1, self.router.map.n_shards):
                self._submit_to_shard(kind, args, shard, fan_of=primary.op_id)
            return
        shard = self.router.shard_for_op(kind, args, self.directory)
        self._submit_to_shard(kind, args, shard, on_rejected, on_applied)

    def _submit_to_shard(self, kind: OpKind, args: dict, shard: int,
                         on_rejected: Callable[[Exception], None] | None = None,
                         on_applied: Callable[[], None] | None = None,
                         fan_of: int | None = None) -> VisibilityOp:
        """Emit one op into ``shard``'s stream with per-(origin, shard) FIFO."""
        origin_seq = self._origin_seqs.get(shard, 0)
        self._origin_seqs[shard] = origin_seq + 1
        op = VisibilityOp(
            kind=kind,
            args=args,
            origin_node=self.node_id,
            origin_seq=origin_seq,
            shard=shard,
            fan_of=fan_of,
            on_rejected=on_rejected,
            on_applied=on_applied,
        )
        self.system.bus.submit(op)
        return op

    def on_bus_delivery(self, seq: int, op: VisibilityOp) -> None:
        """Receive a sequenced op; apply in order via the hold-back queue.

        Sharded replicas keep one hold-back cursor per shard (each shard's
        ``seq`` is its own gap-free sequence); cross-shard interleaving is
        whatever the transport produced, which is safe because ops on
        different shards only ever touch disjoint registries (or commute —
        see :mod:`repro.shard.router`).
        """
        if self.crashed:
            return
        if self.router is None:
            self._op_holdback[seq] = op
            while self._next_apply_seq in self._op_holdback:
                ready = self._op_holdback.pop(self._next_apply_seq)
                self._next_apply_seq += 1
                self._apply_op(ready)
            return
        shard = op.shard
        holdback = self._shard_holdbacks.setdefault(shard, {})
        holdback[seq] = op
        cursor = self._shard_cursors.setdefault(shard, 0)
        while cursor in holdback:
            ready = holdback.pop(cursor)
            cursor += 1
            self._shard_cursors[shard] = cursor
            self._apply_or_park(ready)

    def _apply_or_park(self, op: VisibilityOp) -> None:
        """Apply ``op``, or park it until its containing space is known.

        An actor-visibility op rides its space's home shard while the
        space's ``ADD_SPACE`` rides shard 0; a replica may see them in
        either order.  Applying against a never-seen space would reject
        here and succeed elsewhere, so the op parks in a per-space FIFO
        instead and drains — in shard-stream arrival order, identical at
        every replica — the moment the ADD applies.  Tombstoned spaces do
        not park: the authoritative answer is a rejection.
        """
        space = op.args.get("space")
        if (
            op.shard != 0  # shard-0 ops share the ADD's stream: total order
            and space is not None
            and op.kind in (OpKind.MAKE_VISIBLE, OpKind.MAKE_INVISIBLE,
                            OpKind.CHANGE_ATTRIBUTES)
            and not self.directory.knows_space(space)
        ):
            self._space_waiting.setdefault(space, []).append(op)
            return
        self._apply_op(op)

    def _apply_op(self, op: VisibilityOp) -> None:
        """Apply one op to the local replica (deterministic across nodes)."""
        tracer = self.system.tracer
        tracer.on_visibility_applied(self.node_id, op, t=self.system.clock.now)
        # Fan copies (the per-shard replicas of BIND_CAPABILITY / PURGE)
        # never fire result callbacks: the shard-0 primary owns those.
        is_origin = op.origin_node == self.node_id and op.fan_of is None
        sharded = self.router is not None
        ops_before = self.directory.op_count
        try:
            kind, a = op.kind, op.args
            if kind is OpKind.ADD_SPACE:
                record = SpaceRecord(
                    a["address"], a.get("capability"), a.get("node", op.origin_node),
                    created_at=self.system.clock.now,
                    shard=a.get("shard", 0),
                )
                self.directory.add_space(record)
                self.managers[a["address"]] = a.get("manager_factory", default_manager)()
            elif kind is OpKind.DESTROY_SPACE:
                self.directory.destroy_space(a["address"])
                self.managers.pop(a["address"], None)
            elif kind is OpKind.MAKE_VISIBLE:
                manager = self.managers.get(a["space"]) or default_manager()
                self.directory.make_visible(
                    a["target"], a["attributes"], a["space"], a.get("capability"),
                    now=self.system.clock.now, check_cycles=manager.check_cycles,
                )
            elif kind is OpKind.MAKE_INVISIBLE:
                self.directory.make_invisible(
                    a["target"], a["space"], a.get("capability")
                )
            elif kind is OpKind.CHANGE_ATTRIBUTES:
                self.directory.change_attributes(
                    a["target"], a["attributes"], a["space"], a.get("capability"),
                    now=self.system.clock.now,
                )
            elif kind is OpKind.BIND_CAPABILITY:
                self.directory.bind_capability(a["target"], a.get("capability"))
            elif kind is OpKind.PURGE:
                self.directory.purge_target(
                    a["target"], shard=op.shard if sharded else None
                )
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unknown op kind {kind}")
        except ActorSpaceError as exc:
            if sharded and self.directory.op_count != ops_before:
                self.directory.note_shard_op(op.shard)
            if is_origin:
                tracer.on_dropped(f"op_rejected:{type(exc).__name__}",
                                  node=self.node_id, t=self.system.clock.now)
                if op.on_rejected is not None:
                    op.on_rejected(exc)
            return
        if sharded:
            if self.directory.op_count != ops_before:
                self.directory.note_shard_op(op.shard)
            if kind is OpKind.ADD_SPACE:
                # The space exists now: drain ops that arrived on its home
                # shard's stream before this replica knew the space, in
                # their original (replica-independent) stream order.
                for waiting in self._space_waiting.pop(a["address"], ()):
                    self._apply_op(waiting)
        if is_origin and op.on_applied is not None:
            op.on_applied()
        # Visibility may have grown: reconsider messages parked here.
        if op.kind in (OpKind.MAKE_VISIBLE, OpKind.CHANGE_ATTRIBUTES, OpKind.ADD_SPACE):
            self._recheck_parked()

    # ------------------------------------------------------------------
    # Actor lifecycle
    # ------------------------------------------------------------------

    def create_actor(
        self,
        behavior: Behavior | Callable,
        args: tuple = (),
        kwargs: dict | None = None,
        host_space: SpaceAddress | None = None,
        capability: Capability | None = None,
        creator: ActorAddress | None = None,
    ) -> ActorAddress:
        """Create an actor on *this* node; returns its fresh mail address."""
        beh = as_behavior(behavior, *args, **(kwargs or {}))
        space = host_space if host_space is not None else self.system.root_space
        address = self.addresses.new_actor_address()
        record = ActorRecord(
            address, beh, self.node_id, space, capability,
            created_at=self.system.clock.now,
        )
        capacity = getattr(self.system, "mailbox_capacity", None)
        if capacity is not None:
            record.mailbox = Mailbox(
                capacity, getattr(self.system, "mailbox_policy",
                                  "drop-oldest"))
        self.actors[address] = record
        # Conservative acquaintances: addresses reachable from behavior state.
        known: set[MailAddress] = set(_behavior_addresses(beh))
        known.add(space)
        self.acquaintances[address] = known
        if creator is not None and creator in self.acquaintances:
            self.acquaintances[creator].add(address)
        if capability is not None:
            self.submit_op(
                OpKind.BIND_CAPABILITY,
                {"target": address, "capability": capability},
            )
        ctx = self.system.make_context(record)
        beh.on_start(ctx)
        self._flush_context(record, ctx)
        return address

    def terminate_actor(self, address: ActorAddress) -> None:
        """Stop an actor: close its mailbox, drop it from matching.

        Mail still queued at termination goes through dead-letter
        capture, so it shows up in DLQ accounting (and may expire there)
        instead of vanishing with the mailbox.
        """
        record = self.actors.get(address)
        if record is None or record.terminated:
            return
        record.terminated = True
        leftovers = record.mailbox.close()
        log = self.system.tracer.log
        if log.enabled:
            # Flight-recorder visibility for mail lost to termination
            # (event-only: drop *counters* keep their historical meaning).
            for envelope in leftovers:
                log.emit("dropped", self.system.clock.now, self.node_id,
                         envelope, reason="mailbox_closed")
        for envelope in leftovers:
            self.system.dead_letters.capture(envelope, self.node_id,
                                             "mailbox_closed")
        # Remove from every registry; replicated so all nodes stop matching it.
        self.submit_op(OpKind.PURGE, {"target": address})

    # ------------------------------------------------------------------
    # Space lifecycle
    # ------------------------------------------------------------------

    def create_space(
        self,
        capability: Capability | None = None,
        manager_factory: Callable[[], SpaceManager] | None = None,
        attributes=None,
        parent: SpaceAddress | None = None,
    ) -> SpaceAddress:
        """Mint a space address and replicate its creation.

        ``attributes``/``parent`` are placement hints under a partitioned
        plane: the space's home shard is the hash of its root attribute
        atom when known, else its parent's shard (path-prefix affinity),
        else a hash of the address.  Stamped into the op args so every
        replica records the same home shard.
        """
        address = self.addresses.new_space_address()
        args = {
            "address": address,
            "capability": capability,
            "node": self.node_id,
            "manager_factory": manager_factory or default_manager,
        }
        if self.router is not None:
            args["shard"] = self.router.home_shard_for_new_space(
                address, attributes=attributes, parent=parent,
                directory=self.directory,
            )
        self.submit_op(OpKind.ADD_SPACE, args)
        return address

    def destroy_space(self, address: SpaceAddress,
                      on_rejected: Callable[[Exception], None] | None = None) -> None:
        self.submit_op(OpKind.DESTROY_SPACE, {"address": address},
                       on_rejected=on_rejected)

    # ------------------------------------------------------------------
    # Visibility primitives (validated locally when possible, then replicated)
    # ------------------------------------------------------------------

    def _precheck(self, target: MailAddress, space: SpaceAddress,
                  capability: Capability | None, check_cycle_target: bool) -> None:
        """Best-effort synchronous validation against the local replica.

        Raises for errors that are certain given local knowledge (bad
        capability on a locally known space, a cycle already visible
        locally).  Races are re-validated authoritatively, in total order,
        when the op applies at every replica.
        """
        if not self.directory.has_space(space):
            return  # unknown here yet: let apply-time decide
        rec = self.directory.space(space)
        manager = self.managers.get(space)
        from repro.core.capabilities import authorize

        if not authorize(capability, rec.capability):
            raise CapabilityError(
                f"capability does not authorize operations in {space!r}"
            )
        if (
            check_cycle_target
            and (manager is None or manager.check_cycles)
            and self.directory.would_cycle(target, space)
        ):
            raise VisibilityCycleError(target, space)

    def make_visible(
        self,
        target: MailAddress,
        attributes,
        space: SpaceAddress,
        capability: Capability | None = None,
    ) -> None:
        self._precheck(target, space, capability, check_cycle_target=True)
        self.submit_op(
            OpKind.MAKE_VISIBLE,
            {
                "target": target,
                "attributes": attributes,
                "space": space,
                "capability": capability,
            },
        )

    def make_invisible(
        self,
        target: MailAddress,
        space: SpaceAddress,
        capability: Capability | None = None,
    ) -> None:
        self._precheck(target, space, capability, check_cycle_target=False)
        self.submit_op(
            OpKind.MAKE_INVISIBLE,
            {"target": target, "space": space, "capability": capability},
        )

    def change_attributes(
        self,
        target: MailAddress,
        attributes,
        space: SpaceAddress,
        capability: Capability | None = None,
    ) -> None:
        self._precheck(target, space, capability, check_cycle_target=False)
        self.submit_op(
            OpKind.CHANGE_ATTRIBUTES,
            {
                "target": target,
                "attributes": attributes,
                "space": space,
                "capability": capability,
            },
        )

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------

    def send_direct(self, envelope: Envelope) -> None:
        """Point-to-point send to an explicit mail address."""
        assert envelope.target is not None
        self.system.tracer.on_sent(envelope.mode, envelope, node=self.node_id,
                                   t=self.system.clock.now)
        self._route(envelope, envelope.target)  # type: ignore[arg-type]

    def send_pattern(self, envelope: Envelope) -> None:
        """``send(pattern@space)``: resolve, arbitrate, deliver to one."""
        assert envelope.destination is not None
        self.system.tracer.on_sent(envelope.mode, envelope, node=self.node_id,
                                   t=self.system.clock.now)
        self._dispatch_pattern(envelope, first_attempt=True)

    def broadcast_pattern(self, envelope: Envelope) -> None:
        """``broadcast(pattern@space)``: resolve, deliver to all."""
        assert envelope.destination is not None
        self.system.tracer.on_sent(envelope.mode, envelope, node=self.node_id,
                                   t=self.system.clock.now)
        self._dispatch_pattern(envelope, first_attempt=True)

    def _scope_spaces(self, envelope: Envelope) -> list[SpaceAddress]:
        host = envelope.origin_space or self.system.root_space
        return resolve_destination_spaces(
            self.directory, envelope.destination, host,
            cache=self.resolution_cache,
        )

    def _resolve(self, envelope: Envelope) -> tuple[set[ActorAddress], SpaceAddress | None]:
        """Resolve receivers; returns (actors, primary scope space)."""
        stats = MatchStats()
        receivers: set[ActorAddress] = set()
        spaces = self._scope_spaces(envelope)
        for space in spaces:
            receivers |= resolve_actors(
                self.directory, envelope.destination.pattern, space, stats,
                cache=self.resolution_cache,
            )
        self.system.tracer.on_resolution(stats, envelope, node=self.node_id,
                                         t=self.system.clock.now)
        return receivers, (spaces[0] if spaces else None)

    def _manager_for(self, envelope: Envelope, scope: SpaceAddress | None) -> SpaceManager:
        if scope is not None and scope in self.managers:
            return self.managers[scope]
        return self.managers.get(self.system.root_space) or default_manager()

    def _dispatch_pattern(self, envelope: Envelope, first_attempt: bool) -> None:
        receivers, scope = self._resolve(envelope)
        manager = self._manager_for(envelope, scope)
        if manager.trap_cycling(envelope):
            self.system.tracer.on_dropped("cycle_trapped", envelope,
                                          node=self.node_id,
                                          t=self.system.clock.now)
            return
        if not receivers:
            self._handle_unmatched(envelope, manager, scope)
            return
        if envelope.mode is Mode.SEND:
            choice = manager.choose_receiver(
                sorted(receivers), self.system.rng_arbitration, self._load_of
            )
            self._route(envelope, choice)
        else:
            for target in sorted(receivers):
                self._route(envelope.clone_for(target), target)
            if manager.unmatched is UnmatchedPolicy.PERSISTENT:
                # Persistent broadcasts also reach future matches.
                self.persistent.append((envelope, set(receivers)))

    def _handle_unmatched(self, envelope: Envelope, manager: SpaceManager,
                          scope: SpaceAddress | None) -> None:
        fate = manager.on_unmatched(envelope, scope)  # may raise NoMatchError
        tracer = self.system.tracer
        now = self.system.clock.now
        if fate == "discard":
            tracer.on_dropped("unmatched_discarded", envelope,
                              node=self.node_id, t=now)
        elif fate == "persist":
            tracer.on_suspended(envelope, node=self.node_id, t=now)
            self.persistent.append((envelope, set()))
        else:  # suspend
            tracer.on_suspended(envelope, node=self.node_id, t=now)
            self.suspended.append(envelope)

    def _recheck_parked(self) -> None:
        """Visibility changed: retry suspended messages, extend persistent ones.

        Every parked envelope re-resolves through the resolution cache,
        which keeps its last-known result keyed on the epochs of the
        spaces its previous walk visited.  An envelope whose resolution
        path did not move therefore costs one cache probe here, not a
        fresh recursive walk — the visibility change that woke us cannot
        have changed its answer.
        """
        tracer = self.system.tracer
        if self.suspended:
            still: list[Envelope] = []
            for envelope in self.suspended:
                receivers, scope = self._resolve(envelope)
                if not receivers:
                    still.append(envelope)
                    continue
                manager = self._manager_for(envelope, scope)
                tracer.on_released(envelope=envelope, node=self.node_id,
                                   t=self.system.clock.now)
                if envelope.mode is Mode.SEND:
                    choice = manager.choose_receiver(
                        sorted(receivers), self.system.rng_arbitration, self._load_of
                    )
                    self._route(envelope, choice)
                else:
                    for target in sorted(receivers):
                        self._route(envelope.clone_for(target), target)
                    if manager.unmatched is UnmatchedPolicy.PERSISTENT:
                        self.persistent.append((envelope, set(receivers)))
            self.suspended = still
        for envelope, delivered_to in self.persistent:
            receivers, _scope = self._resolve(envelope)
            for target in sorted(receivers - delivered_to):
                delivered_to.add(target)
                tracer.persistent_deliveries += 1
                self._route(envelope.clone_for(target), target)

    def _load_of(self, address: ActorAddress) -> int:
        """Load estimate for arbitration: queued plus in-flight messages.

        A real deployment would obtain this from the monitoring daemons
        section 8 proposes for customized managers (actors cannot be sent
        bookkeeping messages); the simulation plays that daemon by reading
        the queue depth and the envelopes already en route to the actor.
        """
        owner = self.system.coordinators[address.node]
        record = owner.actors.get(address)
        queued = record.mailbox.pending if record is not None else 0
        en_route = sum(
            1 for e in self.system.in_flight.values() if e.target == address
        )
        return queued + en_route

    # -- routing -----------------------------------------------------------------

    def _route(self, envelope: Envelope, target: ActorAddress) -> None:
        """Forward ``envelope`` to ``target``'s home node and schedule delivery."""
        envelope.target = target
        system = self.system
        dst_node = target.node
        admission = getattr(system, "admission", None)
        if admission is not None and envelope.port is not Port.BEHAVIOR \
                and envelope.port is not Port.RPC:
            # Control traffic (behavior installs, RPC replies) is never
            # rate limited: shedding it wedges actors instead of
            # protecting them — same exemption as the bounded mailbox.
            verdict = admission.check(self.node_id, dst_node,
                                      system.clock.now)
            if verdict is not None:
                # Shed at the door: park with backoff retry so the
                # rejection is load leveling, not silent loss.
                system.tracer.on_overload(verdict, envelope,
                                          node=self.node_id,
                                          t=system.clock.now,
                                          dst_node=dst_node)
                system.dead_letters.capture_retry(envelope, dst_node,
                                                  verdict)
                return
        envelope.hop(self.node_id)
        kind = system.topology.link_kind(self.node_id, dst_node)
        system.tracer.on_hop(kind, envelope, node=self.node_id,
                             t=system.clock.now, dst_node=dst_node)
        try:
            latency = system.transport.deliver_latency(self.node_id, dst_node)
        except NodeDownError:
            system.tracer.on_dropped("node_down", envelope, node=self.node_id,
                                     t=system.clock.now)
            system.dead_letters.capture(envelope, dst_node, "node_down")
            return
        except (TransportError, RuntimeError):
            system.tracer.on_dropped("transport_failure", envelope,
                                     node=self.node_id, t=system.clock.now)
            return
        system.in_flight[envelope.envelope_id] = envelope
        system.events.schedule(
            system.clock.now + latency,
            lambda: system.coordinators[dst_node]._deliver(envelope),
            priority=ACTOR_PRIORITY,
            tag=("deliver", target),
        )

    def _deliver(self, envelope: Envelope) -> None:
        """Arrival at the target's node: enqueue and schedule processing."""
        system = self.system
        system.in_flight.pop(envelope.envelope_id, None)
        if self.crashed:
            system.tracer.on_dropped("node_down", envelope, node=self.node_id,
                                     t=system.clock.now)
            system.dead_letters.capture(envelope, self.node_id, "node_down")
            return
        target: ActorAddress = envelope.target  # type: ignore[assignment]
        record = self.actors.get(target)
        if record is None or record.terminated:
            system.tracer.on_dropped("dead_letter", envelope, node=self.node_id,
                                     t=system.clock.now)
            system.dead_letters.capture(envelope, self.node_id, "dead_letter")
            return
        envelope.delivered_at = system.clock.now
        envelope.hop(self.node_id)
        try:
            shed = record.mailbox.deliver(envelope)
        except MailboxClosedError:
            system.tracer.on_dropped("dead_letter", envelope, node=self.node_id,
                                     t=system.clock.now)
            system.dead_letters.capture(envelope, self.node_id, "dead_letter")
            return
        if shed:
            admission = getattr(system, "admission", None)
            if admission is not None:
                admission.on_overflow(self.node_id, system.clock.now,
                                      len(shed))
            accepted = True
            for victim in shed:
                if victim is envelope:
                    accepted = False
                system.tracer.on_dropped("mailbox_overflow", victim,
                                         node=self.node_id,
                                         t=system.clock.now)
                system.dead_letters.capture_retry(victim, self.node_id,
                                                  "mailbox_overflow")
            if not accepted:
                return
        system.dead_letters.note_delivered(envelope.envelope_id)
        system.tracer.on_enqueued(envelope, node=self.node_id,
                                  t=system.clock.now,
                                  queue_depth=record.mailbox.pending,
                                  receiver=target)
        # Receiving a message extends the acquaintance set (addresses in
        # the payload become known to the receiver).
        known = self.acquaintances.setdefault(target, set())
        known.update(scan_addresses(envelope.message.payload))
        if envelope.message.headers:
            known.update(scan_addresses(envelope.message.headers))
        if envelope.message.reply_to is not None:
            known.add(envelope.message.reply_to)
        if envelope.sender is not None:
            known.add(envelope.sender)
        system.tracer.on_delivered(
            envelope.mode, target, envelope.sent_at, system.clock.now,
            envelope.trace[0] if envelope.trace else self.node_id, self.node_id,
            envelope=envelope,
        )
        self._schedule_processing(record)

    def _schedule_processing(self, record: ActorRecord) -> None:
        if record.address in self._processing_scheduled or record.terminated:
            return
        self._processing_scheduled.add(record.address)
        system = self.system
        system.events.schedule(
            system.clock.now + system.processing_delay,
            lambda: self._process_next(record),
            priority=ACTOR_PRIORITY,
            tag=("process", record.address),
        )

    def _process_next(self, record: ActorRecord) -> None:
        """Run the actor's behavior on its next ready message."""
        self._processing_scheduled.discard(record.address)
        if record.terminated or self.crashed:
            return
        record.install_pending()
        envelope = record.mailbox.next_ready()
        if envelope is None:
            return
        system = self.system
        ctx = system.make_context(record, cause=envelope)
        system.tracer.on_invocation(envelope, node=self.node_id,
                                    t=system.clock.now, actor=record.address,
                                    queue_depth=record.mailbox.pending)
        record.processed_count += 1
        try:
            record.behavior.receive(ctx, envelope.message)
        except ActorSpaceError as exc:
            # Paradigm-level failures inside a behavior kill that actor,
            # not the simulation: report and terminate.
            system.tracer.on_dropped(f"behavior_error:{type(exc).__name__}",
                                     envelope, node=self.node_id,
                                     t=system.clock.now)
            self.terminate_actor(record.address)
            return
        self._flush_context(record, ctx)
        if not record.mailbox.is_empty and not record.terminated:
            self._schedule_processing(record)

    def _flush_context(self, record: ActorRecord, ctx) -> None:
        """Acquaintance bookkeeping after user code ran.

        An address can enter behavior state through exactly three
        channels, each scanned where it is cheapest:

        * the initial state — scanned once at :meth:`create_actor`;
        * a delivered message — payload/reply_to/sender scanned once at
          delivery time (:meth:`_deliver`);
        * the context API — addresses it handed out during this
          invocation are in ``ctx.claimed``.

        So the post-receive step only folds in ``ctx.claimed`` (plus a
        one-off scan of a behavior staged with ``become``, whose fresh
        constructor may embed any of the above): O(new addresses) per
        message instead of an O(behavior state) rescan, which made every
        stateful actor's processing cost grow with its history.
        """
        claimed = ctx.claimed
        if claimed or record.pending_behavior is not None:
            known = self.acquaintances.setdefault(record.address, set())
            known.update(claimed)
            if record.pending_behavior is not None:
                known.update(_behavior_addresses(record.pending_behavior))

    # ------------------------------------------------------------------

    def local_actor_addresses(self) -> Iterable[ActorAddress]:
        return self.actors.keys()

    def export_parked(self) -> dict:
        """Observable park-set state for conformance checking (§5.6).

        Returns shallow copies: ``suspended`` envelopes in park order and
        ``persistent`` as ``(envelope, frozenset(delivered_to))`` pairs.
        """
        return {
            "suspended": list(self.suspended),
            "persistent": [(env, frozenset(done)) for env, done in self.persistent],
        }

    def __repr__(self):
        return (
            f"<Coordinator n{self.node_id} actors={len(self.actors)} "
            f"suspended={len(self.suspended)}>"
        )
