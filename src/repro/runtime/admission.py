"""Admission control: rate limiting and circuit breaking at the door.

The bounded mailbox (``core/mailbox.py``) protects one actor; admission
control protects the *route*.  The coordinator consults this module in
``_route`` — before an envelope is even put in flight — and sheds at the
door when the destination is known to be saturated, which is strictly
cheaper than delivering into a full mailbox and shedding there:

* :class:`TokenBucket` — per ``(src, dst)`` route rate limiting.  A
  bucket of ``burst`` tokens refills at ``rate`` tokens per (virtual)
  second; an envelope that finds the bucket empty is rejected with
  reason ``admission_rate``.
* :class:`CircuitBreaker` — per destination node.  The breaker trips
  (reason ``circuit_open``) when the destination's mailboxes shed more
  than ``threshold`` envelopes within ``window`` seconds, or when its
  dead-letter queue is saturated past ``dlq_fraction`` of capacity.  It
  re-closes after ``cooldown`` seconds without fresh sheds — the
  half-open probe is simply the first admitted envelope, whose fate
  feeds the same shed counters back in.

Rejections are not drops: the coordinator parks rejected envelopes in
the :class:`~repro.runtime.failure.DeadLetterQueue` with capped backoff
redelivery (queue-based load leveling), so every admission decision is
visible in typed events, counters, and DLQ accounting.

Everything here is deterministic and clock-driven — no wall-clock reads,
no background tasks — so the simulator's virtual time and the TCP
runtime's wall clock both drive it identically.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .system import ActorSpaceSystem


class TokenBucket:
    """Classic token bucket: ``burst`` capacity, ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last = now

    def try_take(self, now: float) -> bool:
        if now > self.last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.last) * self.rate)
            self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class CircuitBreaker:
    """Open on recent overload at the destination; close after cooldown."""

    __slots__ = ("threshold", "window", "cooldown", "_sheds", "open",
                 "opened_at", "trips")

    def __init__(self, threshold: int, window: float, cooldown: float):
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        #: Timestamps of recent destination-side sheds.
        self._sheds: deque[float] = deque()
        self.open = False
        self.opened_at = 0.0
        self.trips = 0

    def record_shed(self, now: float, count: int = 1) -> None:
        for _ in range(count):
            self._sheds.append(now)
        self._trim(now)

    def _trim(self, now: float) -> None:
        cutoff = now - self.window
        sheds = self._sheds
        while sheds and sheds[0] < cutoff:
            sheds.popleft()

    def allow(self, now: float, saturated: bool) -> bool:
        """One admission decision; updates open/closed state."""
        self._trim(now)
        tripping = saturated or len(self._sheds) >= self.threshold
        if not self.open:
            if tripping:
                self.open = True
                self.opened_at = now
                self.trips += 1
                return False
            return True
        # Open: stay open while the condition holds (re-arming the
        # cooldown), close once it has been quiet for ``cooldown``.
        if tripping:
            self.opened_at = now
            return False
        if now - self.opened_at >= self.cooldown:
            self.open = False
            return True
        return False


class AdmissionControl:
    """Shared per-system admission state, consulted by every coordinator.

    ``rate``/``burst`` of ``None`` disables rate limiting; a
    ``breaker_threshold`` of ``None`` disables the breaker.  With both
    off the system never constructs this object, so the default hot
    path pays only a ``getattr`` check.
    """

    def __init__(
        self,
        system: "ActorSpaceSystem",
        *,
        rate: float | None = None,
        burst: float | None = None,
        breaker_threshold: int | None = None,
        breaker_window: float = 1.0,
        breaker_cooldown: float = 0.5,
        dlq_fraction: float = 0.9,
    ):
        if rate is not None and rate <= 0:
            raise ValueError(f"admission rate must be positive, got {rate}")
        self.system = system
        self.rate = rate
        self.burst = burst if burst is not None else (rate or 0.0)
        self.breaker_threshold = breaker_threshold
        self.breaker_window = breaker_window
        self.breaker_cooldown = breaker_cooldown
        self.dlq_fraction = dlq_fraction
        self._buckets: dict[tuple[int, int], TokenBucket] = {}
        self._breakers: dict[int, CircuitBreaker] = {}
        self.rejected_rate = 0
        self.rejected_breaker = 0

    # -- feedback from the delivery path ------------------------------------

    def on_overflow(self, dst_node: int, now: float, count: int = 1) -> None:
        """A mailbox on ``dst_node`` shed ``count`` envelopes."""
        if self.breaker_threshold is None:
            return
        self._breaker(dst_node).record_shed(now, count)

    # -- the decision -------------------------------------------------------

    def check(self, src_node: int, dst_node: int, now: float) -> str | None:
        """Admission verdict for one envelope: ``None`` = admit, else
        the rejection reason (``admission_rate`` / ``circuit_open``)."""
        if self.breaker_threshold is not None:
            breaker = self._breaker(dst_node)
            was_open = breaker.open
            if not breaker.allow(now, self._dlq_saturated(dst_node)):
                if not was_open:
                    self.system.tracer.on_overload(
                        "breaker_open", node=src_node, t=now,
                        dst_node=dst_node)
                self.rejected_breaker += 1
                return "circuit_open"
            if was_open:
                self.system.tracer.on_overload(
                    "breaker_closed", node=src_node, t=now,
                    dst_node=dst_node)
        if self.rate is not None:
            bucket = self._buckets.get((src_node, dst_node))
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[(src_node, dst_node)] = bucket
            if not bucket.try_take(now):
                self.rejected_rate += 1
                return "admission_rate"
        return None

    # -- plumbing -----------------------------------------------------------

    def _breaker(self, dst_node: int) -> CircuitBreaker:
        breaker = self._breakers.get(dst_node)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_threshold or 1,
                                     self.breaker_window,
                                     self.breaker_cooldown)
            self._breakers[dst_node] = breaker
        return breaker

    def _dlq_saturated(self, dst_node: int) -> bool:
        dlq = self.system.dead_letters
        return dlq.pending(dst_node) >= self.dlq_fraction * dlq.capacity

    def breaker_state(self) -> dict[int, bool]:
        """Destination node -> breaker currently open."""
        return {node: b.open for node, b in self._breakers.items()}

    def metrics(self) -> dict:
        return {
            "rejected_rate": self.rejected_rate,
            "rejected_breaker": self.rejected_breaker,
            "breaker_trips": sum(b.trips for b in self._breakers.values()),
            "breakers_open": sum(b.open for b in self._breakers.values()),
        }

    def __repr__(self):
        return (f"<AdmissionControl rate={self.rate} "
                f"breaker_threshold={self.breaker_threshold} "
                f"rejected={self.rejected_rate + self.rejected_breaker}>")
