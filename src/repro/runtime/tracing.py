"""Trace and accounting layer.

Every experiment in EXPERIMENTS.md is computed from the counters and
samples gathered here.  Since the flight-recorder PR the tracer is a thin
façade over two structured subsystems:

* a :class:`~repro.runtime.metrics.MetricsRegistry` holding every counter
  by name (``messages_sent_total``, ``messages_dropped_total``, ...) —
  the historical ``Tracer`` attributes are live views of registry
  metrics, so existing experiments keep working unchanged;
* a :class:`~repro.runtime.eventlog.EventLog` receiving typed per-envelope
  lifecycle events whenever tracing is enabled (``ActorSpaceSystem(trace=
  True)``); when disabled, each ``on_*`` hook pays one attribute check.

``keep_samples`` accepts ``True`` (keep every latency sample — the
historical behavior), ``False`` (keep none), or an integer cap ``N``:
reservoir sampling then keeps a uniform ``N``-sample of all deliveries,
so long runs stop growing memory linearly while percentiles stay honest.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass

from repro.core.addresses import ActorAddress
from repro.core.messages import Mode

from .eventlog import EventLog
from .metrics import MetricsRegistry
from .network import LinkKind


@dataclass
class LatencySample:
    """One end-to-end message delivery."""

    mode: Mode
    sent_at: float
    delivered_at: float
    src_node: int
    dst_node: int

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


def _scalar(metric_name: str, doc: str):
    """A read/write int attribute backed by a named registry counter."""

    def getter(self):
        return self.registry.counter(metric_name).value

    def setter(self, value):
        self.registry.counter(metric_name).value = value

    return property(getter, setter, doc=doc)


class Tracer:
    """Counters, samples, and lifecycle events describing one run."""

    def __init__(
        self,
        keep_samples: "bool | int" = True,
        registry: MetricsRegistry | None = None,
        log: EventLog | None = None,
    ):
        if keep_samples is not True and keep_samples is not False:
            if not isinstance(keep_samples, int) or keep_samples < 0:
                raise ValueError(
                    f"keep_samples must be a bool or a non-negative int, "
                    f"got {keep_samples!r}"
                )
        self.keep_samples = keep_samples
        self.registry = registry if registry is not None else MetricsRegistry()
        #: The flight recorder; disabled by default (one attribute check
        #: per hook call), enabled via ``ActorSpaceSystem(trace=...)``.
        self.log = log if log is not None else EventLog(enabled=False)
        self._init_state()

    def _init_state(self) -> None:
        """(Re)create the per-run mutable state; registry/log survive."""
        reg = self.registry
        #: Envelopes entering the system, by mode.
        self.sent = reg.labeled("messages_sent_total")
        #: Envelope deliveries, by mode (a broadcast counts once per receiver).
        self.delivered = reg.labeled("messages_delivered_total")
        #: Hops by link kind, as routed (locality accounting).
        self.hops = reg.labeled("hops_total")
        #: Messages per receiving actor (load-balance accounting).
        self.received_by = reg.labeled("deliveries_by_receiver")
        #: Messages dropped: label reason -> count (dead letters, cycles...).
        self.dropped = reg.labeled("messages_dropped_total")
        #: Visibility operations applied per node replica (coherence checks).
        self.visibility_ops_applied = reg.labeled("visibility_ops_applied_total")
        #: Per-mode end-to-end latency (bounded reservoir; see keep_samples).
        self.latency_hist = reg.histogram("delivery_latency")
        #: Pattern-resolution work distribution (entries examined).
        self.resolution_hist = reg.histogram("resolution_entries_examined")
        # Scalar counters (registered so snapshots include them even at 0).
        for name in (
            "messages_suspended_total",
            "messages_released_total",
            "persistent_deliveries_total",
            "behavior_invocations_total",
            "resolution_cache_hits_total",
            "resolution_cache_misses_total",
            "resolution_cache_invalidations_total",
            "dead_letters_queued_total",
            "dead_letters_redelivered_total",
            "dead_letters_expired_total",
            "failovers_total",
            "quarantined_entries_total",
            "node_suspected_total",
            "node_confirmed_down_total",
            "node_recovered_total",
            "overload_admission_rate_total",
            "overload_circuit_open_total",
            "overload_breaker_open_total",
            "overload_breaker_closed_total",
        ):
            reg.counter(name)
        #: End-to-end latency samples (see ``keep_samples``).
        self.samples: list[LatencySample] = []
        self._samples_seen = 0
        self._sample_rng = random.Random(0xACE5)
        #: Pattern-resolution work: entries examined, per resolution.
        self.match_examined: list[int] = []
        #: (time, node) marks of suspension releases, for the timeline view.
        self.release_marks: list[tuple[float, int]] = []
        #: Time series the experiments can append to: name -> [(t, value)].
        self.series: dict[str, list[tuple[float, float]]] = defaultdict(list)

    # Scalar counter views (read/write for backward compatibility:
    # the coordinator historically did ``tracer.persistent_deliveries += 1``).
    suspended_count = _scalar(
        "messages_suspended_total",
        "Pattern messages that found no match and were suspended.")
    released_count = _scalar(
        "messages_released_total",
        "Suspended messages later released by a visibility change.")
    persistent_deliveries = _scalar(
        "persistent_deliveries_total",
        "Persistent-broadcast deliveries to late-arriving actors.")
    invocations = _scalar(
        "behavior_invocations_total", "Behavior invocations executed.")
    cache_hits = _scalar(
        "resolution_cache_hits_total", "Resolution-cache hits, all nodes.")
    cache_misses = _scalar(
        "resolution_cache_misses_total", "Resolution-cache misses, all nodes.")
    cache_invalidations = _scalar(
        "resolution_cache_invalidations_total",
        "Resolution-cache entries invalidated by visibility changes.")
    dead_letters_queued = _scalar(
        "dead_letters_queued_total",
        "Undeliverable envelopes captured by the dead-letter queue.")
    dead_letters_redelivered = _scalar(
        "dead_letters_redelivered_total",
        "Dead letters redelivered after their destination recovered.")
    dead_letters_expired = _scalar(
        "dead_letters_expired_total",
        "Dead letters dropped for good (attempt cap or queue overflow).")
    failovers = _scalar(
        "failovers_total",
        "Bus failovers survived (sequencer re-elections, token regenerations).")
    quarantined_entries = _scalar(
        "quarantined_entries_total",
        "Directory entries masked by failure quarantine, across replicas.")

    # -- recording -------------------------------------------------------------

    def on_sent(self, mode: Mode, envelope=None, node: int = 0,
                t: float = 0.0, scheduled: bool = False) -> None:
        self.sent[mode] += 1
        if self.log.enabled:
            self.log.emit("sent", t, node, envelope,
                          mode=mode.value, scheduled=scheduled)

    def on_delivered(
        self,
        mode: Mode,
        receiver: ActorAddress,
        sent_at: float,
        delivered_at: float,
        src_node: int,
        dst_node: int,
        envelope=None,
    ) -> None:
        self.delivered[mode] += 1
        self.received_by[receiver] += 1
        self.latency_hist.observe(delivered_at - sent_at)
        self._keep_sample(
            LatencySample(mode, sent_at, delivered_at, src_node, dst_node)
        )
        if self.log.enabled:
            self.log.emit(
                "delivered", delivered_at, dst_node, envelope,
                mode=mode.value, receiver=str(receiver),
                sent_at=sent_at, src_node=src_node,
            )

    def _keep_sample(self, sample: LatencySample) -> None:
        """Honour the ``keep_samples`` policy (all / none / reservoir-N)."""
        if self.keep_samples is False:
            return
        self._samples_seen += 1
        if self.keep_samples is True:
            self.samples.append(sample)
            return
        cap = self.keep_samples
        if len(self.samples) < cap:
            self.samples.append(sample)
            return
        slot = self._sample_rng.randrange(self._samples_seen)
        if slot < cap:
            self.samples[slot] = sample

    def on_enqueued(self, envelope=None, node: int = 0, t: float = 0.0,
                    queue_depth: int = 0, receiver=None) -> None:
        """The target mailbox accepted the envelope (event-only hook)."""
        if self.log.enabled:
            self.log.emit("enqueued", t, node, envelope,
                          queue_depth=queue_depth, receiver=receiver)

    def on_hop(self, kind: LinkKind, envelope=None, node: int = 0,
               t: float = 0.0, dst_node: int | None = None) -> None:
        self.hops[kind] += 1
        if self.log.enabled:
            self.log.emit("hop", t, node, envelope, link=kind.value,
                          dst_node=dst_node)

    def on_suspended(self, envelope=None, node: int = 0, t: float = 0.0) -> None:
        self.registry.counter("messages_suspended_total").inc()
        if self.log.enabled:
            self.log.emit("suspended", t, node, envelope)

    def on_released(self, n: int = 1, envelope=None, node: int = 0,
                    t: float = 0.0) -> None:
        self.registry.counter("messages_released_total").inc(n)
        self.release_marks.append((t, node))
        if self.log.enabled:
            self.log.emit("released", t, node, envelope,
                          parked_age=(t - envelope.sent_at) if envelope else None)

    def on_dropped(self, reason: str, envelope=None, node: int = 0,
                   t: float = 0.0) -> None:
        self.dropped[reason] += 1
        if self.log.enabled:
            self.log.emit("dropped", t, node, envelope, reason=reason)

    def on_invocation(self, envelope=None, node: int = 0, t: float = 0.0,
                      actor=None, queue_depth: int = 0) -> None:
        self.registry.counter("behavior_invocations_total").inc()
        if self.log.enabled:
            # ``invoked`` marks the queue-*down* edge (one message left the
            # mailbox for processing) — what event-driven daemons react to.
            self.log.emit("invoked", t, node, envelope, actor=actor,
                          queue_depth=queue_depth)

    def on_resolution(self, stats, envelope=None, node: int = 0,
                      t: float = 0.0) -> None:
        """Fold one resolution's :class:`~repro.core.matching.MatchStats` in."""
        self.match_examined.append(stats.entries_examined)
        self.resolution_hist.observe(stats.entries_examined)
        reg = self.registry
        reg.counter("resolution_cache_hits_total").inc(stats.cache_hits)
        reg.counter("resolution_cache_misses_total").inc(stats.cache_misses)
        reg.counter("resolution_cache_invalidations_total").inc(
            stats.cache_invalidations)
        if self.log.enabled:
            self.log.emit(
                "resolved", t, node, envelope,
                entries_examined=stats.entries_examined,
                spaces_descended=stats.spaces_descended,
                cache_hits=stats.cache_hits,
                cache_misses=stats.cache_misses,
            )

    def on_visibility_applied(self, node: int, op=None, t: float = 0.0) -> None:
        self.visibility_ops_applied[node] += 1
        if self.log.enabled:
            data = {}
            if op is not None:
                data = {"op": op.kind.value, "origin_node": op.origin_node,
                        "op_id": op.op_id}
            self.log.emit("visibility_op", t, node, None, **data)

    def on_daemon_fired(self, node: int, t: float, space, updates: int,
                        kind: str = "poll") -> None:
        """A monitoring daemon rewrote derived attributes (section 8)."""
        self.registry.counter("daemon_updates_total").inc(updates)
        if self.log.enabled:
            # ``trigger`` not ``kind``: the latter is the event kind itself.
            self.log.emit("daemon_fired", t, node, None,
                          space=str(space), updates=updates, trigger=kind)

    def on_dead_letter(self, action: str, envelope=None, node: int = 0,
                       t: float = 0.0, reason: str | None = None,
                       attempts: int = 0) -> None:
        """Dead-letter lifecycle: ``action`` is queued/redelivered/expired."""
        self.registry.counter(f"dead_letters_{action}_total").inc()
        if self.log.enabled:
            self.log.emit(f"dead_letter_{action}", t, node, envelope,
                          reason=reason, attempts=attempts)

    def on_overload(self, decision: str, envelope=None, node: int = 0,
                    t: float = 0.0, dst_node: int | None = None) -> None:
        """Overload-protection decisions: admission rejections and
        circuit-breaker transitions (``decision`` is e.g.
        ``admission_rate``, ``circuit_open``, ``breaker_open``,
        ``breaker_closed``)."""
        self.registry.counter(f"overload_{decision}_total").inc()
        if self.log.enabled:
            self.log.emit(f"overload_{decision}", t, node, envelope,
                          dst_node=dst_node)

    def on_failover(self, node: int = -1, t: float = 0.0, protocol: str = "",
                    reason: str = "", new_leader: int | None = None) -> None:
        """The bus survived a leadership/token loss."""
        self.registry.counter("failovers_total").inc()
        if self.log.enabled:
            self.log.emit("failover", t, node, None, protocol=protocol,
                          reason=reason, new_leader=new_leader)

    def on_quarantine(self, kind: str, node: int, t: float = 0.0,
                      target_node: int | None = None, masked: int = 0) -> None:
        """One replica masked (``quarantined``) or unmasked a dead node."""
        if kind == "quarantined":
            self.registry.counter("quarantined_entries_total").inc(masked)
        if self.log.enabled:
            self.log.emit(kind, t, node, None, target_node=target_node,
                          masked=masked)

    def on_node_health(self, kind: str, observer: int, peer: int,
                       t: float = 0.0) -> None:
        """Failure-detector verdicts: node_suspected/confirmed_down/recovered."""
        self.registry.counter(f"{kind}_total").inc()
        if self.log.enabled:
            self.log.emit(kind, t, observer, None, peer=peer)

    def on_gc(self, node: int, t: float, report) -> None:
        """One garbage-collection cycle completed."""
        self.registry.counter("gc_cycles_total").inc()
        self.registry.counter("gc_collected_total").inc(report.collected_count)
        if self.log.enabled:
            self.log.emit(
                "gc", t, node, None,
                collected_actors=len(report.collected_actors),
                collected_spaces=len(report.collected_spaces),
                live_actors=len(report.live_actors),
                kept_active=len(report.kept_active),
            )

    def record(self, name: str, t: float, value: float) -> None:
        """Append a point to the named time series."""
        self.series[name].append((t, value))

    # -- summaries ----------------------------------------------------------------

    def latency_stats(self, mode: Mode | None = None) -> dict:
        """Mean/p50/p95/max latency over recorded samples."""
        import numpy as np

        values = [
            s.latency for s in self.samples if mode is None or s.mode is mode
        ]
        if not values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
        arr = np.asarray(values)
        return {
            "count": len(values),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "max": float(arr.max()),
        }

    def load_distribution(self, receivers=None) -> list[int]:
        """Per-receiver delivery counts (optionally restricted to a set)."""
        if receivers is None:
            return sorted(self.received_by.values())
        return [self.received_by.get(r, 0) for r in receivers]

    def hop_summary(self) -> dict[str, int]:
        return {k.value: self.hops.get(k, 0) for k in LinkKind}

    def cache_summary(self) -> dict[str, float]:
        """Resolution-cache counters plus the overall hit rate."""
        lookups = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "invalidations": self.cache_invalidations,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
        }

    def metrics_snapshot(self) -> dict:
        """Plain-data dump of every registered metric (monitoring surface)."""
        return self.registry.snapshot()

    def reset(self) -> None:
        """Clear counters and samples (between benchmark phases on a reused
        system) while *preserving* the metrics registry's registered
        structure and the event log's attached sinks and subscribers —
        a reset must not silently disconnect a flight recorder.
        """
        self.registry.reset()
        self.log.clear()
        self._init_state()

    def __repr__(self):
        total_sent = sum(self.sent.values())
        total_dlv = sum(self.delivered.values())
        return f"<Tracer sent={total_sent} delivered={total_dlv} suspended={self.suspended_count}>"
