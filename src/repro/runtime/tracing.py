"""Trace and accounting layer.

Every experiment in EXPERIMENTS.md is computed from the counters and
samples gathered here, so the tracer is deliberately boring: plain
counters, plain lists, no I/O.  The system owns exactly one tracer;
coordinators and the scheduler report into it.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.core.addresses import ActorAddress
from repro.core.messages import Mode

from .network import LinkKind


@dataclass
class LatencySample:
    """One end-to-end message delivery."""

    mode: Mode
    sent_at: float
    delivered_at: float
    src_node: int
    dst_node: int

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


class Tracer:
    """Counters and samples describing one run."""

    def __init__(self, keep_samples: bool = True):
        self.keep_samples = keep_samples
        #: Envelopes entering the system, by mode.
        self.sent: Counter = Counter()
        #: Envelope deliveries, by mode (a broadcast counts once per receiver).
        self.delivered: Counter = Counter()
        #: Hops by link kind, as routed (locality accounting).
        self.hops: Counter = Counter()
        #: Messages per receiving actor (load-balance accounting).
        self.received_by: Counter = Counter()
        #: Pattern messages that found no match and were suspended.
        self.suspended_count = 0
        #: Suspended messages later released by a visibility change.
        self.released_count = 0
        #: Messages dropped: dict reason -> count (dead letters, cycles...).
        self.dropped: Counter = Counter()
        #: Persistent-broadcast deliveries to late-arriving actors.
        self.persistent_deliveries = 0
        #: Behavior invocations executed.
        self.invocations = 0
        #: End-to-end latency samples (optional; large runs disable them).
        self.samples: list[LatencySample] = []
        #: Pattern-resolution work: entries examined, per resolution.
        self.match_examined: list[int] = []
        #: Resolution-cache accounting, aggregated over every coordinator
        #: resolution (send/broadcast dispatch and parked-message rechecks).
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        #: Visibility operations applied per node replica (coherence checks).
        self.visibility_ops_applied: Counter = Counter()
        #: Time series the experiments can append to: name -> [(t, value)].
        self.series: dict[str, list[tuple[float, float]]] = defaultdict(list)

    # -- recording -------------------------------------------------------------

    def on_sent(self, mode: Mode) -> None:
        self.sent[mode] += 1

    def on_delivered(
        self,
        mode: Mode,
        receiver: ActorAddress,
        sent_at: float,
        delivered_at: float,
        src_node: int,
        dst_node: int,
    ) -> None:
        self.delivered[mode] += 1
        self.received_by[receiver] += 1
        if self.keep_samples:
            self.samples.append(
                LatencySample(mode, sent_at, delivered_at, src_node, dst_node)
            )

    def on_hop(self, kind: LinkKind) -> None:
        self.hops[kind] += 1

    def on_suspended(self) -> None:
        self.suspended_count += 1

    def on_released(self, n: int = 1) -> None:
        self.released_count += n

    def on_dropped(self, reason: str) -> None:
        self.dropped[reason] += 1

    def on_invocation(self) -> None:
        self.invocations += 1

    def on_resolution(self, stats) -> None:
        """Fold one resolution's :class:`~repro.core.matching.MatchStats` in."""
        self.match_examined.append(stats.entries_examined)
        self.cache_hits += stats.cache_hits
        self.cache_misses += stats.cache_misses
        self.cache_invalidations += stats.cache_invalidations

    def record(self, name: str, t: float, value: float) -> None:
        """Append a point to the named time series."""
        self.series[name].append((t, value))

    # -- summaries ----------------------------------------------------------------

    def latency_stats(self, mode: Mode | None = None) -> dict:
        """Mean/p50/p95/max latency over recorded samples."""
        import numpy as np

        values = [
            s.latency for s in self.samples if mode is None or s.mode is mode
        ]
        if not values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
        arr = np.asarray(values)
        return {
            "count": len(values),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "max": float(arr.max()),
        }

    def load_distribution(self, receivers=None) -> list[int]:
        """Per-receiver delivery counts (optionally restricted to a set)."""
        if receivers is None:
            return sorted(self.received_by.values())
        return [self.received_by.get(r, 0) for r in receivers]

    def hop_summary(self) -> dict[str, int]:
        return {k.value: self.hops.get(k, 0) for k in LinkKind}

    def cache_summary(self) -> dict[str, float]:
        """Resolution-cache counters plus the overall hit rate."""
        lookups = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "invalidations": self.cache_invalidations,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
        }

    def reset(self) -> None:
        """Clear everything (between benchmark phases on a reused system)."""
        self.__init__(keep_samples=self.keep_samples)

    def __repr__(self):
        total_sent = sum(self.sent.values())
        total_dlv = sum(self.delivered.values())
        return f"<Tracer sent={total_sent} delivered={total_dlv} suspended={self.suspended_count}>"
