"""The system facade: boot a simulated ActorSpace world and drive it.

:class:`ActorSpaceSystem` wires together the whole architecture of
section 7 — one coordinator per node (Fig. 2), a virtual coordinator bus
(Fig. 3), a globally visible root actorSpace (section 7.1) — over the
deterministic discrete-event substrate.  The application driver plays the
paper's *manager* role: it holds capabilities, creates actors and spaces,
injects external messages, and can run privileged operations such as
garbage collection or node crashes (failure injection).

Typical use::

    system = ActorSpaceSystem(topology=Topology.lan(4), seed=7)
    worker = system.create_actor(WorkerBehavior(), node=1)
    system.make_visible(worker, "workers/w1", system.root_space)
    system.send("workers/*", payload={"job": 42})
    system.run()

``run()`` executes events until the queue drains (quiescence) or a limit
is hit; virtual time then tells you how long the computation "took".
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.actor import ActorRecord, Behavior
from repro.core.addresses import ActorAddress, MailAddress, SpaceAddress
from repro.core.capabilities import Capability, CapabilityIssuer
from repro.core.gc import GarbageCollector, GcReport, scan_addresses
from repro.core.mailbox import ShedPolicy
from repro.core.manager import SpaceManager
from repro.core.messages import Destination, Envelope, Message, Mode, Port, parse_destination
from repro.core.visibility import Directory

from .admission import AdmissionControl
from .bus import Bus, SequencerBus, TokenRingBus
from .clock import VirtualClock
from .context import RuntimeContext
from .coordinator import Coordinator
from .eventlog import EventLog, export_chrome_trace
from .events import EventQueue
from .failure import DeadLetterQueue, FailureDetector
from .metrics import MetricsRegistry
from .network import LatencyModel, Network, Topology
from .rng import RngHub
from .tracing import Tracer
from .transport import LossyTransport, NetworkTransport, Transport


class ActorSpaceSystem:
    """A complete simulated ActorSpace deployment.

    Parameters
    ----------
    topology:
        Node/cluster layout (default: a single node).
    seed:
        Master seed for every random stream in the run.
    latency_model:
        Link-class latencies (default :class:`LatencyModel`).
    bus:
        ``"sequencer"`` (default) or ``"token-ring"`` — the total-order
        protocol for visibility changes (section 7.3; ablated in E9).
    processing_delay:
        Virtual time consumed scheduling each behavior invocation; zero
        keeps semantics-only tests instantaneous.
    loss:
        Per-attempt message loss probability (failure injection); the
        transport retransmits, preserving eventual delivery.
    keep_samples:
        Record per-delivery latency samples: ``True`` keeps all,
        ``False`` none, an integer ``N`` a uniform reservoir of ``N``
        (bounded memory on long runs).
    root_manager_factory:
        Manager policies for the root space (default: paper defaults).
    dlq_capacity / dlq_max_redeliveries:
        Bounds of the per-destination :class:`DeadLetterQueue` capturing
        envelopes dropped because their destination was down (or their
        target dead); queued letters are redelivered with capped
        exponential backoff when the destination recovers.
    trace:
        The causal flight recorder.  ``False`` (default) disables it —
        the hot path pays one attribute check per hook.  ``True``
        enables an in-memory :class:`~repro.runtime.eventlog.EventLog`
        ring buffer; an :class:`EventLog` instance is used as-is (bring
        your own capacity/sinks).
    mailbox_capacity / mailbox_policy:
        Overload protection for actors: bound every mailbox's
        INVOCATION port at ``mailbox_capacity`` envelopes and shed the
        overflow per :class:`~repro.core.mailbox.ShedPolicy`
        (``drop-oldest`` / ``drop-newest`` / ``suspend-sender``).  Shed
        mail flows into the dead-letter queue with backoff redelivery —
        counted, never vanished.  ``None`` (default) keeps mailboxes
        unbounded.
    admission_rate / admission_burst / breaker_*:
        Admission control at the routing door: a per-route token bucket
        (``admission_rate`` msgs/s, ``admission_burst`` capacity) and a
        per-destination circuit breaker that opens after
        ``breaker_threshold`` mailbox sheds within ``breaker_window``
        seconds (or a saturated DLQ) and re-closes after
        ``breaker_cooldown`` quiet seconds.  Both default to off.
    """

    def __init__(
        self,
        topology: Topology | None = None,
        seed: int = 0,
        latency_model: LatencyModel | None = None,
        bus: str = "sequencer",
        processing_delay: float = 0.0,
        loss: float = 0.0,
        keep_samples: "bool | int" = True,
        root_manager_factory: Callable[[], SpaceManager] | None = None,
        dlq_capacity: int = 256,
        dlq_max_redeliveries: int = 4,
        trace: "bool | EventLog" = False,
        mailbox_capacity: int | None = None,
        mailbox_policy: str = "drop-oldest",
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        breaker_threshold: int | None = None,
        breaker_window: float = 1.0,
        breaker_cooldown: float = 0.5,
        shards: int = 1,
        sequencer_service_time: float = 0.0,
        shard_sequencer: int | None = None,
    ):
        self.topology = topology or Topology.single()
        self.rng = RngHub(seed)
        self.clock = VirtualClock()
        self.events = EventQueue()
        if isinstance(trace, EventLog):
            self.event_log = trace
        else:
            self.event_log = EventLog(enabled=bool(trace))
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(keep_samples=keep_samples,
                             registry=self.metrics, log=self.event_log)
        self.network = Network(self.topology, latency_model, self.rng.stream("latency"))
        base_transport: Transport = NetworkTransport(self.network)
        self._network_transport = base_transport
        if loss > 0.0:
            base_transport = LossyTransport(base_transport, loss, self.rng.stream("loss"))
        self.transport: Transport = base_transport
        self.capabilities = CapabilityIssuer(self.rng.stream("capabilities"))
        self.rng_arbitration = self.rng.stream("arbitration")
        self.processing_delay = processing_delay
        #: Envelopes scheduled but not yet delivered (pins GC roots).
        self.in_flight: dict[int, Envelope] = {}
        #: External handles pinned as GC roots by the driver.
        self._held_roots: set[MailAddress] = set()

        self.coordinators: list[Coordinator] = [
            Coordinator(n, self) for n in self.topology.nodes
        ]
        nodes = list(self.topology.nodes)
        #: Partitioned visibility plane (``shards > 1``): shard map,
        #: router, and one sequencer per shard behind a bus facade.  At
        #: ``shards == 1`` (default) every code path below is untouched.
        self.shards = shards
        self.shard_map = None
        self.shard_router = None
        if shards > 1:
            if bus != "sequencer":
                raise ValueError("a partitioned plane requires bus='sequencer'")
            from repro.shard import ShardedBus, ShardMap, ShardRouter

            self.shard_map = ShardMap(shards, nodes)
            self.shard_router = ShardRouter(self.shard_map)
            self.bus = ShardedBus(
                nodes, self.events, self.clock, self.transport,
                self.shard_map, sequencer_override=shard_sequencer,
                service_time=sequencer_service_time,
            )
        elif bus == "sequencer":
            self.bus: Bus = SequencerBus(nodes, self.events, self.clock,
                                         self.transport,
                                         service_time=sequencer_service_time)
        elif bus == "token-ring":
            self.bus = TokenRingBus(nodes, self.events, self.clock, self.transport)
        else:
            raise ValueError(f"unknown bus protocol {bus!r}")
        self.bus.deliver = lambda node, seq, op: self.coordinators[node].on_bus_delivery(seq, op)
        self.bus.event_log = self.event_log
        self.bus.tracer = self.tracer
        if self.shard_router is not None:
            for coordinator in self.coordinators:
                coordinator.router = self.shard_router
                coordinator.directory.sharded = True

        #: Bounded capture of undeliverable envelopes, redelivered on
        #: recovery (self-healing delivery).
        self.dead_letters = DeadLetterQueue(
            self, capacity=dlq_capacity, max_redeliveries=dlq_max_redeliveries
        )
        #: Overload protection: bounded mailboxes for every actor created
        #: from here on (``None`` = unbounded, the historical default)...
        self.mailbox_capacity = mailbox_capacity
        self.mailbox_policy = ShedPolicy.parse(mailbox_policy)
        #: ...plus optional admission control consulted by ``_route``.
        self.admission: AdmissionControl | None = None
        if admission_rate is not None or breaker_threshold is not None:
            self.admission = AdmissionControl(
                self, rate=admission_rate, burst=admission_burst,
                breaker_threshold=breaker_threshold,
                breaker_window=breaker_window,
                breaker_cooldown=breaker_cooldown,
            )
        #: Heartbeat-based failure detector; armed on demand via
        #: :meth:`start_failure_detector`.
        self.failure_detector: FailureDetector | None = None

        # Bootstrap the globally visible root actorSpace (section 7.1)
        # identically in every replica, outside the bus: it must exist
        # before the first operation can be ordered.
        from repro.core.actorspace import SpaceRecord

        self.root_space: SpaceAddress = self.coordinators[0].addresses.new_space_address()
        factory = root_manager_factory or SpaceManager
        for coordinator in self.coordinators:
            coordinator.directory.add_space(SpaceRecord(self.root_space, None, 0))
            coordinator.managers[self.root_space] = factory()
        # The root is globally visible by construction; it is therefore a
        # permanent GC root (which is exactly why section 7.1 adds explicit
        # space destruction).
        self._held_roots.add(self.root_space)

    # ------------------------------------------------------------------
    # Driver-level (manager-role) API
    # ------------------------------------------------------------------

    def new_capability(self) -> Capability:
        """Mint a fresh unforgeable capability."""
        return self.capabilities.new_capability()

    def create_actor(
        self,
        behavior: "Behavior | Callable",
        *args: Any,
        node: int = 0,
        space: SpaceAddress | None = None,
        capability: Capability | None = None,
        **kwargs: Any,
    ) -> ActorAddress:
        """Create an actor from outside the system (driver/manager role)."""
        address = self.coordinators[node].create_actor(
            behavior, args, kwargs,
            host_space=space if space is not None else self.root_space,
            capability=capability,
        )
        self._held_roots.add(address)
        return address

    def create_space(
        self,
        capability: Capability | None = None,
        node: int = 0,
        manager_factory: Callable[[], SpaceManager] | None = None,
        attributes=None,
        parent: SpaceAddress | None = None,
    ) -> SpaceAddress:
        """Create an actorSpace; optionally make it visible under ``attributes``."""
        address = self.coordinators[node].create_space(
            capability, manager_factory, attributes=attributes,
            parent=parent,
        )
        self._held_roots.add(address)
        if attributes is not None:
            self.coordinators[node].make_visible(
                address, attributes, parent if parent is not None else self.root_space,
                capability,
            )
        return address

    def destroy_space(self, address: SpaceAddress, node: int = 0) -> None:
        """Explicitly destroy a space (section 7.1)."""
        self.coordinators[node].destroy_space(address)

    def make_visible(self, target, attributes, space: SpaceAddress | None = None,
                     capability: Capability | None = None, node: int = 0) -> None:
        self.coordinators[node].make_visible(
            target, attributes, space if space is not None else self.root_space, capability
        )

    def make_invisible(self, target, space: SpaceAddress | None = None,
                       capability: Capability | None = None, node: int = 0) -> None:
        self.coordinators[node].make_invisible(
            target, space if space is not None else self.root_space, capability
        )

    def change_attributes(self, target, attributes, space: SpaceAddress | None = None,
                          capability: Capability | None = None, node: int = 0) -> None:
        self.coordinators[node].change_attributes(
            target, attributes, space if space is not None else self.root_space, capability
        )

    # -- external messaging --------------------------------------------------------

    def send_to(self, target: ActorAddress, payload: Any, *,
                reply_to: ActorAddress | None = None, node: int = 0,
                headers: dict | None = None) -> None:
        """Direct external send (e.g. the initial job injection)."""
        envelope = Envelope(
            message=Message(payload, reply_to=reply_to, headers=headers or {}),
            sender=None, mode=Mode.DIRECT, target=target,
            port=Port.INVOCATION, sent_at=self.clock.now,
            origin_space=self.root_space,
        )
        self.coordinators[node].send_direct(envelope)

    def send(self, destination: "Destination | str", payload: Any, *,
             reply_to: ActorAddress | None = None, node: int = 0,
             headers: dict | None = None) -> None:
        """External pattern-directed send resolved at ``node``'s replica."""
        dest = destination if isinstance(destination, Destination) else parse_destination(destination)
        envelope = Envelope(
            message=Message(payload, reply_to=reply_to, headers=headers or {}),
            sender=None, mode=Mode.SEND, destination=dest,
            port=Port.INVOCATION, sent_at=self.clock.now,
            origin_space=self.root_space,
        )
        self.coordinators[node].send_pattern(envelope)

    def broadcast(self, destination: "Destination | str", payload: Any, *,
                  reply_to: ActorAddress | None = None, node: int = 0,
                  headers: dict | None = None) -> None:
        """External pattern-directed broadcast."""
        dest = destination if isinstance(destination, Destination) else parse_destination(destination)
        envelope = Envelope(
            message=Message(payload, reply_to=reply_to, headers=headers or {}),
            sender=None, mode=Mode.BROADCAST, destination=dest,
            port=Port.INVOCATION, sent_at=self.clock.now,
            origin_space=self.root_space,
        )
        self.coordinators[node].broadcast_pattern(envelope)

    # ------------------------------------------------------------------
    # Simulation control
    # ------------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until quiescence, ``until``, or ``max_events``.

        Returns the virtual time at which the run stopped.
        """
        executed = 0
        while self.events:
            next_time = self.events.peek_time()
            if until is not None and next_time is not None and next_time > until:
                if until > self.clock.now:
                    self.clock.advance_to(until)
                break
            if max_events is not None and executed >= max_events:
                break
            popped = self.events.pop()
            if popped is None:  # pragma: no cover - guarded by `while`
                break
            time, action = popped
            if time > self.clock.now:
                self.clock.advance_to(time)
            # An event scheduled in the (virtual) past — e.g. a driver
            # hook armed after the clock already passed its time — fires
            # immediately at the current instant.
            action()
            executed += 1
        return self.clock.now

    def step(self) -> bool:
        """Execute a single event; returns False when the queue is empty."""
        popped = self.events.pop()
        if popped is None:
            return False
        time, action = popped
        if time > self.clock.now:
            self.clock.advance_to(time)
        action()
        return True

    @property
    def idle(self) -> bool:
        """True when no events remain (the system is quiescent)."""
        return not self.events

    # -- failure injection -------------------------------------------------------

    def crash_node(self, node: int) -> None:
        """Hard-crash a node: its actors stop, messages to it are lost.

        The bus is notified immediately (a crashed sequencer or token
        holder must not kill the protocol), but the directory is *not*
        quarantined here — dead replicas stay visible until the failure
        detector confirms them down, preserving E11's baseline blast
        radius for runs without a detector.
        """
        self.coordinators[node].crashed = True
        self._network_transport.crash_node(node)  # type: ignore[attr-defined]
        self.bus.on_node_down(node)

    def recover_node(self, node: int) -> None:
        """Bring a crashed node back; its actors resume where they stopped.

        Recovery is the self-healing hinge: the bus replays the missed
        visibility ops from its log (state transfer), every replica
        lifts its quarantine mask for the node and reconsiders parked
        messages the mask was hiding matches from, the failure detector
        forgets its verdicts, the bus resumes work parked on the node,
        dead letters captured for it are redelivered with backoff, and
        mailbox backlogs accepted before the crash restart processing.
        """
        recovered = self.coordinators[node]
        recovered.crashed = False
        self._network_transport.recover_node(node)  # type: ignore[attr-defined]
        if self.shard_router is not None:
            # Per-shard state transfer: each shard replays from this
            # replica's own cursor into that shard's stream.
            self.bus.replay_to(node, dict(recovered._shard_cursors))
        else:
            self.bus.replay_to(node, recovered._next_apply_seq)
        unmasked: list[Coordinator] = []
        for coordinator in self.coordinators:
            if node in coordinator.directory.quarantined_nodes:
                coordinator.directory.unquarantine_node(node)
                self.tracer.on_quarantine(
                    "unquarantined", coordinator.node_id, self.clock.now,
                    target_node=node,
                )
                unmasked.append(coordinator)
        # The recovering replica may itself hold stale masks for peers
        # that came back while it was down.
        own = recovered.directory
        for peer in list(own.quarantined_nodes):
            if not self.transport.node_is_down(peer):
                own.unquarantine_node(peer)
                if recovered not in unmasked:
                    unmasked.append(recovered)
        # Lifting a mask can make a parked message matchable again (§5.6):
        # the node's actors were only hidden, not unregistered, so every
        # coordinator that unmasked must reconsider what it parked.
        # (Masks change outside the bus, so the op-apply recheck never
        # sees this transition.)
        for coordinator in unmasked:
            if not coordinator.crashed:
                coordinator._recheck_parked()
        if self.failure_detector is not None:
            self.failure_detector.on_node_recovered(node)
        self.bus.on_node_recovered(node)
        self.dead_letters.flush(node)
        # Mail accepted before the crash is still queued; processing
        # events were swallowed while ``crashed`` was set, so restart the
        # pump for every actor with a backlog.
        for record in recovered.actors.values():
            if not record.terminated and not record.mailbox.is_empty:
                recovered._schedule_processing(record)

    def rebalance_shard(self, shard: int, node: int) -> int:
        """Move one shard's sequencer role to ``node``, live (driver op).

        Returns the new shard-map version.  Only meaningful under a
        partitioned plane (``shards > 1``).
        """
        if self.shard_map is None:
            raise ValueError("rebalance_shard requires shards > 1")
        return self.bus.rebalance(shard, node)

    def start_failure_detector(
        self,
        duration: float,
        interval: float = 0.5,
        suspect_after: int = 2,
        confirm_after: int = 4,
    ) -> FailureDetector:
        """Arm (or extend) heartbeat-based peer monitoring.

        ``duration`` bounds the detector in virtual time — an unbounded
        periodic timer would keep :meth:`run` from ever reaching
        quiescence.  Returns the detector for introspection.
        """
        if self.failure_detector is None:
            self.failure_detector = FailureDetector(
                self, interval=interval,
                suspect_after=suspect_after, confirm_after=confirm_after,
            )
        return self.failure_detector.start(duration)

    def _on_node_confirmed_down(self, node: int) -> None:
        """First detector confirmation: quarantine and fail over.

        Every live replica masks the dead node's actor entries (bumping
        the epochs of the spaces that hosted them, so resolution caches
        invalidate), and the bus gets a failure notification.
        ``Directory.snapshot()`` ignores masks, so replica coherence
        checks are unaffected; only *resolution* stops returning actors
        that can no longer answer.
        """
        for coordinator in self.coordinators:
            if coordinator.crashed:
                continue
            masked = coordinator.directory.quarantine_node(node)
            self.tracer.on_quarantine(
                "quarantined", coordinator.node_id, self.clock.now,
                target_node=node, masked=masked,
            )
        self.bus.on_node_down(node)

    # -- introspection -------------------------------------------------------------

    def actor_record(self, address: ActorAddress) -> ActorRecord | None:
        return self.coordinators[address.node].actors.get(address)

    def directory_of(self, node: int = 0) -> Directory:
        """One node's visibility replica (node 0 by convention)."""
        return self.coordinators[node].directory

    def resolve(self, pattern, space: SpaceAddress | None = None,
                node: int = 0) -> list[ActorAddress]:
        """Who would ``send(pattern@space)`` currently consider? (sorted)

        Pure introspection against ``node``'s replica — no message moves.
        Useful for assertions, monitoring dashboards, and the examples.
        Goes through the node's resolution cache, exactly like a real
        dispatch would.
        """
        from repro.core.matching import resolve_actors

        coordinator = self.coordinators[node]
        scope = space if space is not None else self.root_space
        return sorted(
            resolve_actors(coordinator.directory, pattern, scope,
                           cache=coordinator.resolution_cache)
        )

    def resolution_cache_stats(self, node: int | None = None) -> dict:
        """Resolution-cache counters, per node or summed across nodes."""
        if node is not None:
            return self.coordinators[node].resolution_cache.stats()
        total: dict = {}
        for coordinator in self.coordinators:
            for key, value in coordinator.resolution_cache.stats().items():
                total[key] = total.get(key, 0) + value
        return total

    def visible_attributes(self, target: MailAddress,
                           space: SpaceAddress | None = None,
                           node: int = 0) -> frozenset:
        """The attributes ``target`` is visible under in ``space`` (or empty)."""
        scope = space if space is not None else self.root_space
        directory = self.coordinators[node].directory
        if not directory.has_space(scope):
            return frozenset()
        entry = directory.space(scope).lookup(target)
        return entry.attributes if entry is not None else frozenset()

    def replicas_coherent(self) -> bool:
        """Do all directory replicas currently agree?  (Run to quiescence first.)"""
        snapshots = [c.directory.snapshot() for c in self.coordinators if not c.crashed]
        return all(s == snapshots[0] for s in snapshots[1:])

    def make_context(self, record: ActorRecord, cause=None) -> RuntimeContext:
        return RuntimeContext(self, record, cause=cause)

    # -- observability ----------------------------------------------------------

    def trace_events(self, kind: str | None = None) -> list:
        """The flight recorder's buffered events (optionally one kind)."""
        if kind is None:
            return list(self.event_log)
        return self.event_log.by_kind(kind)

    def export_trace(self, path: str) -> dict:
        """Write the buffered events as a Chrome ``trace_event`` file.

        The result opens directly in ``chrome://tracing`` / Perfetto
        with one track per node; returns the trace dict.
        """
        return export_chrome_trace(self.event_log, path)

    def export_observables(self) -> dict:
        """One coherent dump of the observable state the paper specifies.

        Consumed by the conformance oracle (``repro.check``) at trace
        boundaries; everything here is defined by §5 semantics, not by
        implementation detail: per-replica directory snapshots and
        quarantine masks, per-origin park sets (§5.6), parked dead
        letters, and which nodes are crashed.
        """
        return {
            "directories": {
                c.node_id: c.directory.snapshot() for c in self.coordinators
            },
            "masks": {
                c.node_id: c.directory.quarantined_nodes for c in self.coordinators
            },
            "parked": {c.node_id: c.export_parked() for c in self.coordinators},
            "dead_letters": self.dead_letters.export_pending(),
            "crashed": {c.node_id for c in self.coordinators if c.crashed},
        }

    def metrics_snapshot(self) -> dict:
        """Plain-data dump of every registered metric, plus live gauges."""
        for coordinator in self.coordinators:
            depth = sum(r.mailbox.pending for r in coordinator.actors.values()
                        if not r.terminated)
            self.metrics.gauge(f"queue_depth_node_{coordinator.node_id}").set(depth)
            self.metrics.gauge(f"parked_node_{coordinator.node_id}").set(
                len(coordinator.suspended) + len(coordinator.persistent))
        self.metrics.gauge("in_flight").set(len(self.in_flight))
        if self.admission is not None:
            for name, value in self.admission.metrics().items():
                self.metrics.gauge(f"admission_{name}").set(value)
        # Transport accounting rides along as gauges (nested counters of a
        # wrapped transport — e.g. LossyTransport's inner — are flattened).
        for name, value in self.transport.metrics_snapshot().items():
            if isinstance(value, dict):
                for inner_name, inner_value in value.items():
                    if not isinstance(inner_value, dict):
                        self.metrics.gauge(
                            f"transport_{name}_{inner_name}").set(inner_value)
            else:
                self.metrics.gauge(f"transport_{name}").set(value)
        return self.metrics.snapshot()

    # -- GC ---------------------------------------------------------------------------

    def hold(self, address: MailAddress) -> None:
        """Pin ``address`` as an external GC root."""
        self._held_roots.add(address)

    def release(self, address: MailAddress) -> None:
        """Drop the external root pin on ``address``."""
        self._held_roots.discard(address)

    def collect_garbage(self, delete: bool = True) -> GcReport:
        """Run a collection cycle over the whole system (driver privilege).

        Marks from the held roots and every *pending* message, per
        section 5.5: "an actor may be garbage collected if ... no
        messages containing its mail address are pending."  Pending
        covers more than the in-flight map — suspended and persistent
        envelopes parked at their origin coordinator (§5.6) and dead
        letters awaiting redelivery are all still undelivered messages,
        so the addresses they carry pin their referents too.  With
        ``delete=True`` collected actors are terminated and purged from
        every registry, and collected spaces destroyed.
        """
        acquaintances: dict[ActorAddress, set[MailAddress]] = {}
        all_actors: list[ActorAddress] = []
        active: list[ActorAddress] = []
        for coordinator in self.coordinators:
            for address, record in coordinator.actors.items():
                if record.terminated:
                    continue
                all_actors.append(address)
                if not record.mailbox.is_empty:
                    active.append(address)
            acquaintances.update(coordinator.acquaintances)

        def pin(envelope: Envelope) -> None:
            if envelope.target is not None:
                in_flight.add(envelope.target)
            if envelope.sender is not None:
                in_flight.add(envelope.sender)
            in_flight.update(scan_addresses(envelope.message.payload))
            if envelope.message.reply_to is not None:
                in_flight.add(envelope.message.reply_to)

        in_flight: set[MailAddress] = set()
        for envelope in self.in_flight.values():
            pin(envelope)
        for coordinator in self.coordinators:
            for envelope in coordinator.suspended:
                pin(envelope)
            for envelope, _delivered in coordinator.persistent:
                pin(envelope)
        for letter in self.dead_letters.letters():
            pin(letter.envelope)

        directory = self.coordinators[0].directory
        collector = GarbageCollector(directory, acquaintances)
        report = collector.collect(
            roots=set(self._held_roots),
            all_actors=all_actors,
            active_actors=active,
            in_flight=in_flight,
        )
        self.tracer.on_gc(0, self.clock.now, report)
        if delete:
            for address in report.collected_actors:
                self.coordinators[address.node].terminate_actor(address)
            for space in report.collected_spaces:
                if space != self.root_space:
                    self.coordinators[0].destroy_space(space)
        return report

    def __repr__(self):
        total = sum(len(c.actors) for c in self.coordinators)
        return (
            f"<ActorSpaceSystem nodes={self.topology.node_count} actors={total} "
            f"t={self.clock.now:.4f}>"
        )
