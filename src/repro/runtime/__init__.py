"""Execution substrate: deterministic simulation of the section-7 design."""

from .bus import Bus, OpKind, SequencerBus, TokenRingBus, VisibilityOp
from .clock import VirtualClock
from .context import RuntimeContext
from .coordinator import Coordinator
from .eventlog import (
    EventLog,
    JsonlSink,
    TraceEvent,
    chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)
from .events import EventQueue
from .failure import DeadLetter, DeadLetterQueue, FailureDetector
from .metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    LabeledCounter,
    MetricsRegistry,
)
from .network import LatencyModel, LinkKind, Network, Topology
from .node import Node
from .rng import RngHub
from .system import ActorSpaceSystem
from .tracing import LatencySample, Tracer
from .transport import (
    InstantTransport,
    LossyTransport,
    NetworkTransport,
    Transport,
)

__all__ = [
    "ActorSpaceSystem",
    "Bus",
    "Coordinator",
    "CounterMetric",
    "DeadLetter",
    "DeadLetterQueue",
    "EventLog",
    "EventQueue",
    "FailureDetector",
    "GaugeMetric",
    "HistogramMetric",
    "JsonlSink",
    "LabeledCounter",
    "MetricsRegistry",
    "TraceEvent",
    "InstantTransport",
    "LatencyModel",
    "LatencySample",
    "LinkKind",
    "LossyTransport",
    "Network",
    "NetworkTransport",
    "Node",
    "OpKind",
    "RngHub",
    "RuntimeContext",
    "SequencerBus",
    "TokenRingBus",
    "Topology",
    "Tracer",
    "Transport",
    "chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
    "VirtualClock",
    "VisibilityOp",
]
