"""Execution substrate: deterministic simulation of the section-7 design."""

from .bus import Bus, OpKind, SequencerBus, TokenRingBus, VisibilityOp
from .clock import VirtualClock
from .context import RuntimeContext
from .coordinator import Coordinator
from .events import EventQueue
from .network import LatencyModel, LinkKind, Network, Topology
from .node import Node
from .rng import RngHub
from .system import ActorSpaceSystem
from .tracing import LatencySample, Tracer
from .transport import (
    InstantTransport,
    LossyTransport,
    NetworkTransport,
    Transport,
)

__all__ = [
    "ActorSpaceSystem",
    "Bus",
    "Coordinator",
    "EventQueue",
    "InstantTransport",
    "LatencyModel",
    "LatencySample",
    "LinkKind",
    "LossyTransport",
    "Network",
    "NetworkTransport",
    "Node",
    "OpKind",
    "RngHub",
    "RuntimeContext",
    "SequencerBus",
    "TokenRingBus",
    "Topology",
    "Tracer",
    "Transport",
    "VirtualClock",
    "VisibilityOp",
]
