"""A named-metrics registry: counters, gauges, and histograms.

The experiments read a zoo of ad-hoc counters; this module gives them a
single structured home.  A :class:`MetricsRegistry` owns every metric by
name, so a run can be summarized (``registry.snapshot()``), reset between
benchmark phases without losing the registered structure, and scraped by
monitoring daemons.  :class:`~repro.runtime.tracing.Tracer` is a façade
over one registry: its historical attributes (``sent``, ``dropped``,
``suspended_count``, ...) are live views of registry metrics, so existing
experiments keep working unchanged while new code can address metrics by
name.

Metric flavours:

* :class:`CounterMetric` — a monotone scalar (``inc``).
* :class:`GaugeMetric` — a settable scalar (queue depth, parked age).
* :class:`HistogramMetric` — a value distribution with a bounded
  reservoir: below the cap every observation is kept; beyond it,
  reservoir sampling keeps a uniform sample of everything seen, so
  long runs get honest percentiles in bounded memory.
* :class:`LabeledCounter` — a ``collections.Counter`` keyed by label
  (mode, link kind, drop reason...), registered under one name.

Everything is deterministic: the histogram reservoir uses its own seeded
RNG, not global randomness.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, Iterable


class CounterMetric:
    """A monotone named scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self):
        return f"<Counter {self.name}={self.value}>"


class GaugeMetric:
    """A named scalar that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self):
        return f"<Gauge {self.name}={self.value}>"


class HistogramMetric:
    """A value distribution kept in a bounded reservoir.

    Up to ``cap`` observations are stored verbatim.  Past the cap,
    classic reservoir sampling (Vitter's algorithm R) replaces a random
    held sample with probability ``cap / seen``, so the reservoir stays
    a uniform sample of the full stream and summaries remain unbiased.
    ``cap=None`` keeps everything (the historical behavior).
    """

    __slots__ = ("name", "cap", "count", "total", "samples", "_rng")

    def __init__(self, name: str, cap: int | None = None, seed: int = 0x5EED):
        if cap is not None and cap <= 0:
            raise ValueError(f"histogram cap must be positive, got {cap}")
        self.name = name
        self.cap = cap
        self.count = 0
        self.total = 0.0
        self.samples: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.cap is None or len(self.samples) < self.cap:
            self.samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.cap:
            self.samples[slot] = value

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) over the held samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
        return ordered[idx]

    def summary(self) -> dict[str, float]:
        if not self.samples:
            return {"count": self.count, "mean": 0.0, "p50": 0.0,
                    "p95": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(self.samples),
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.samples.clear()

    def __repr__(self):
        return f"<Histogram {self.name} n={self.count} held={len(self.samples)}>"


class LabeledCounter(Counter):
    """A per-label counter family registered under one name.

    Subclasses :class:`collections.Counter`, so every Counter idiom the
    experiments already use (indexing, ``.values()``, ``.get``) works on
    the registered metric directly.
    """

    def __init__(self, name: str):
        super().__init__()
        self.name = name

    def inc(self, label: Any, n: int = 1) -> None:
        self[label] += n

    def reset(self) -> None:
        self.clear()


class MetricsRegistry:
    """All metrics of one run, addressable by name.

    ``counter``/``gauge``/``histogram``/``labeled`` are get-or-create:
    asking twice for the same name returns the same object, so producers
    and consumers need only agree on names.  Asking for an existing name
    with a different flavour is an error (one name, one type).
    """

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is {type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get_or_create(name, CounterMetric, lambda: CounterMetric(name))

    def gauge(self, name: str) -> GaugeMetric:
        return self._get_or_create(name, GaugeMetric, lambda: GaugeMetric(name))

    def histogram(self, name: str, cap: int | None = None) -> HistogramMetric:
        return self._get_or_create(
            name, HistogramMetric, lambda: HistogramMetric(name, cap=cap)
        )

    def labeled(self, name: str) -> LabeledCounter:
        return self._get_or_create(name, LabeledCounter, lambda: LabeledCounter(name))

    def get(self, name: str):
        """The registered metric, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """A plain-data dump of every metric's current value.

        Counters/gauges map to numbers, labeled counters to
        ``{str(label): count}`` dicts, histograms to their summary.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, (CounterMetric, GaugeMetric)):
                out[name] = metric.value
            elif isinstance(metric, LabeledCounter):
                out[name] = {str(k): v for k, v in sorted(
                    metric.items(), key=lambda kv: str(kv[0]))}
            elif isinstance(metric, HistogramMetric):
                out[name] = metric.summary()
            else:  # pragma: no cover - no other flavours registered
                out[name] = repr(metric)
        return out

    def reset(self) -> None:
        """Zero every metric *in place*.

        Holders of metric objects (the tracer façade, daemons) keep
        their references valid across a reset — only the values clear.
        """
        for metric in self._metrics.values():
            metric.reset()

    def __repr__(self):
        return f"<MetricsRegistry {len(self._metrics)} metrics>"
