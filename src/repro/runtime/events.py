"""The discrete-event queue driving the simulation.

Events are ``(time, priority, seq, action)`` entries in a binary heap.
``seq`` is a monotone counter breaking ties deterministically: two events
at the same instant run in scheduling order, never in hash order — a hard
requirement for reproducibility.  ``priority`` orders classes of work at
the same instant (e.g. bus deliveries before actor processing) without
resorting to epsilon time offsets.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventQueue:
    """A deterministic time-ordered queue of zero-argument actions."""

    __slots__ = ("_heap", "_counter", "scheduled_count", "executed_count")

    def __init__(self):
        self._heap: list[tuple[float, int, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.scheduled_count = 0
        self.executed_count = 0

    def schedule(self, time: float, action: Callable[[], None], priority: int = 0) -> None:
        """Enqueue ``action`` to run at virtual ``time``.

        Lower ``priority`` runs first among same-time events.
        """
        if time != time or time == float("inf"):  # NaN / unbounded guards
            raise ValueError(f"event time must be finite, got {time}")
        heapq.heappush(self._heap, (time, priority, next(self._counter), action))
        self.scheduled_count += 1

    def pop(self) -> tuple[float, Callable[[], None]] | None:
        """Remove and return the next ``(time, action)``, or ``None`` if empty."""
        if not self._heap:
            return None
        time, _prio, _seq, action = heapq.heappop(self._heap)
        self.executed_count += 1
        return time, action

    def peek_time(self) -> float | None:
        """The timestamp of the next event without removing it."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self):
        nxt = f" next@{self._heap[0][0]:.4f}" if self._heap else ""
        return f"<EventQueue {len(self._heap)} pending{nxt}>"
