"""The discrete-event queue driving the simulation.

Events are ``(time, priority, seq, action, tag)`` entries in a binary
heap.  ``seq`` is a monotone counter breaking ties deterministically: two
events at the same instant run in scheduling order, never in hash order —
a hard requirement for reproducibility.  ``priority`` orders classes of
work at the same instant (e.g. bus deliveries before actor processing)
without resorting to epsilon time offsets.

Schedule exploration hooks
--------------------------
The scheduling-order tie-break is itself a *semantic* choice: the runtime
promises the same observable behavior for every order of same-instant,
same-priority events, and the conformance harness (``repro.check``) wants
to test that promise.  Two optional knobs expose the choice point without
perturbing default behavior:

* ``schedule(..., tag=...)`` lets scheduling sites label events with a
  small tuple describing what the event does (e.g. ``("deliver", addr)``),
  so a controller can tell which tied events actually conflict;
* :attr:`EventQueue.tiebreaker` — when set, :meth:`pop` gathers *all*
  entries tied on ``(time, priority)`` and asks the tiebreaker which to
  run first.  ``None`` (the default) keeps the historical FIFO order and
  costs nothing on the hot path.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventQueue:
    """A deterministic time-ordered queue of zero-argument actions."""

    __slots__ = ("_heap", "_counter", "scheduled_count", "executed_count",
                 "tiebreaker")

    def __init__(self):
        self._heap: list[tuple[float, int, int, Callable[[], None], object]] = []
        self._counter = itertools.count()
        self.scheduled_count = 0
        self.executed_count = 0
        #: Optional schedule controller: an object with a
        #: ``choose(tags: list) -> int`` method consulted whenever several
        #: events are tied on ``(time, priority)``.  ``None`` = FIFO.
        self.tiebreaker = None

    def schedule(self, time: float, action: Callable[[], None],
                 priority: int = 0, tag: object = None) -> None:
        """Enqueue ``action`` to run at virtual ``time``.

        Lower ``priority`` runs first among same-time events.  ``tag`` is
        an optional label (conventionally a small tuple) consumed by a
        schedule-exploration tiebreaker; it never affects default order.
        """
        if time != time or time == float("inf"):  # NaN / unbounded guards
            raise ValueError(f"event time must be finite, got {time}")
        heapq.heappush(self._heap, (time, priority, next(self._counter), action, tag))
        self.scheduled_count += 1

    def pop(self) -> tuple[float, Callable[[], None]] | None:
        """Remove and return the next ``(time, action)``, or ``None`` if empty."""
        if not self._heap:
            return None
        if self.tiebreaker is not None:
            entry = self._pop_with_tiebreak()
        else:
            entry = heapq.heappop(self._heap)
        self.executed_count += 1
        return entry[0], entry[3]

    def _pop_with_tiebreak(self):
        """Gather all entries tied on (time, priority); let the controller pick."""
        first = heapq.heappop(self._heap)
        ties = [first]
        while self._heap and self._heap[0][0] == first[0] and self._heap[0][1] == first[1]:
            ties.append(heapq.heappop(self._heap))
        if len(ties) == 1:
            return first
        index = self.tiebreaker.choose([e[4] for e in ties])
        if not 0 <= index < len(ties):
            index = 0
        chosen = ties.pop(index)
        for entry in ties:
            heapq.heappush(self._heap, entry)
        return chosen

    def peek_time(self) -> float | None:
        """The timestamp of the next event without removing it."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self):
        nxt = f" next@{self._heap[0][0]:.4f}" if self._heap else ""
        return f"<EventQueue {len(self._heap)} pending{nxt}>"
