"""The small sequential interpreter (paper section 7.2).

A tree-walking evaluator over parsed forms.  Pure computation comes from
``builtins``; every *effect* — message sends, actor creation, ``become``,
visibility changes — is a special form dispatched to an
:class:`EffectBridge` (implemented by the ActorInterface), mirroring the
prototype's split: "the interpreter ... occasionally accesses the
ActorInterface for sending and receiving messages from the Coordinator".

The evaluator is fuel-limited: each method invocation may execute at most
``max_steps`` evaluation steps, so a buggy script loops visibly (an
error) instead of hanging the simulation — an untrusted-client guard in
the spirit of the paper's open-systems discussion (section 2).
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.core.errors import InterpreterRuntimeError

from .astnodes import Symbol, to_source
from .builtins import BUILTINS
from .env import Env


class EffectBridge(Protocol):
    """The effectful operations a script may perform (the ActorInterface)."""

    def self_address(self) -> Any: ...
    def host_space(self) -> Any: ...
    def reply_addr(self) -> Any: ...
    def now(self) -> float: ...
    def send_to(self, target: Any, payload: Any) -> None: ...
    def send_pattern(self, dest: str, payload: Any, reply_to: Any | None) -> None: ...
    def broadcast_pattern(self, dest: str, payload: Any, reply_to: Any | None) -> None: ...
    def become(self, name: str, args: list) -> None: ...
    def create(self, name: str, args: list) -> Any: ...
    def create_actorspace(self, capability: Any | None) -> Any: ...
    def make_visible(self, target: Any, attrs: Any, space: Any, cap: Any) -> None: ...
    def make_invisible(self, target: Any, space: Any, cap: Any) -> None: ...
    def change_attributes(self, target: Any, attrs: Any, space: Any, cap: Any) -> None: ...
    def new_capability(self) -> Any: ...
    def terminate(self) -> None: ...
    def schedule(self, delay: float, payload: Any) -> None: ...
    def emit(self, text: str) -> None: ...


class Evaluator:
    """Evaluates forms against an environment and an effect bridge."""

    def __init__(self, bridge: EffectBridge, max_steps: int = 100_000):
        self.bridge = bridge
        self.max_steps = max_steps
        self._steps = 0

    # -- driver -------------------------------------------------------------------

    def run_body(self, body: list, env: Env) -> Any:
        """Evaluate a method body (a sequence of forms); fresh fuel."""
        self._steps = 0
        result: Any = None
        for form in body:
            result = self.eval(form, env)
        return result

    # -- core --------------------------------------------------------------------

    def eval(self, form: Any, env: Env) -> Any:
        self._steps += 1
        if self._steps > self.max_steps:
            raise InterpreterRuntimeError(
                f"script exceeded {self.max_steps} evaluation steps"
            )
        # Atoms ------------------------------------------------------------
        if isinstance(form, Symbol):
            return env.lookup(str(form))
        if not isinstance(form, list):
            return form  # numbers, strings, booleans, None, addresses...
        if not form:
            raise InterpreterRuntimeError("cannot evaluate the empty form ()")
        head = form[0]
        if isinstance(head, Symbol):
            handler = _SPECIAL.get(str(head))
            if handler is not None:
                return handler(self, form, env)
        # Application --------------------------------------------------------
        fn = self.eval(head, env)
        args = [self.eval(arg, env) for arg in form[1:]]
        if callable(fn):
            try:
                return fn(*args)
            except InterpreterRuntimeError:
                raise
            except Exception as exc:
                raise InterpreterRuntimeError(
                    f"error in {to_source(form)}: {exc}"
                ) from exc
        raise InterpreterRuntimeError(f"not callable: {to_source(head)}")

    # -- helpers used by special forms ------------------------------------------

    def _expect(self, cond: bool, form: list, why: str) -> None:
        if not cond:
            raise InterpreterRuntimeError(f"{why} in {to_source(form)}")

    def _name(self, form: list, idx: int) -> str:
        self._expect(len(form) > idx and isinstance(form[idx], Symbol), form,
                     f"expected a symbol at position {idx}")
        return str(form[idx])


# ---------------------------------------------------------------------------
# Special forms
# ---------------------------------------------------------------------------


def _sf_quote(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) == 2, form, "quote takes one argument")
    return _strip_symbols(form[1])


def _strip_symbols(form: Any) -> Any:
    """Quoted data: symbols become strings, lists stay lists."""
    if isinstance(form, Symbol):
        return str(form)
    if isinstance(form, list):
        return [_strip_symbols(f) for f in form]
    return form


def _sf_if(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) in (3, 4), form, "if takes 2 or 3 arguments")
    cond = ev.eval(form[1], env)
    if cond is not False and cond is not None:
        return ev.eval(form[2], env)
    if len(form) == 4:
        return ev.eval(form[3], env)
    return None


def _sf_let(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) >= 3 and isinstance(form[1], list), form,
               "let needs a binding list and a body")
    child = env.child()
    for binding in form[1]:
        ev._expect(isinstance(binding, list) and len(binding) == 2
                   and isinstance(binding[0], Symbol), form,
                   "let bindings are (name expr) pairs")
        child.define(str(binding[0]), ev.eval(binding[1], child))
    result = None
    for body_form in form[2:]:
        result = ev.eval(body_form, child)
    return result


def _sf_begin(ev: Evaluator, form: list, env: Env) -> Any:
    result = None
    for body_form in form[1:]:
        result = ev.eval(body_form, env)
    return result


def _sf_and(ev: Evaluator, form: list, env: Env) -> Any:
    result: Any = True
    for sub in form[1:]:
        result = ev.eval(sub, env)
        if result is False or result is None:
            return False
    return result


def _sf_or(ev: Evaluator, form: list, env: Env) -> Any:
    for sub in form[1:]:
        result = ev.eval(sub, env)
        if result is not False and result is not None:
            return result
    return False


def _sf_set(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) == 3, form, "set! takes a name and a value")
    name = ev._name(form, 1)
    value = ev.eval(form[2], env)
    env.assign(name, value)
    return value


def _sf_define(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) == 3, form, "define takes a name and a value")
    name = ev._name(form, 1)
    value = ev.eval(form[2], env)
    env.define(name, value)
    return value


def _sf_while(ev: Evaluator, form: list, env: Env) -> Any:
    """Loops evaluate for effect; their value is ``nil`` (both engines)."""
    ev._expect(len(form) >= 2, form, "while needs a condition")
    while True:
        cond = ev.eval(form[1], env)
        if cond is False or cond is None:
            return None
        for body_form in form[2:]:
            ev.eval(body_form, env)


def _sf_for(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) >= 3, form, "for needs (for name list body...)")
    name = ev._name(form, 1)
    items = ev.eval(form[2], env)
    if not isinstance(items, list):
        raise InterpreterRuntimeError(f"for: expected a list, got {items!r}")
    for item in items:
        child = env.child({name: item})
        for body_form in form[3:]:
            ev.eval(body_form, child)
    return None


# -- effect forms -------------------------------------------------------------


def _sf_self(ev: Evaluator, form: list, env: Env) -> Any:
    return ev.bridge.self_address()


def _sf_host_space(ev: Evaluator, form: list, env: Env) -> Any:
    return ev.bridge.host_space()


def _sf_reply_addr(ev: Evaluator, form: list, env: Env) -> Any:
    return ev.bridge.reply_addr()


def _sf_now(ev: Evaluator, form: list, env: Env) -> Any:
    return ev.bridge.now()


def _sf_send_to(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) == 3, form, "send-to takes target and payload")
    target = ev.eval(form[1], env)
    payload = ev.eval(form[2], env)
    ev.bridge.send_to(target, payload)
    return None


def _sf_send(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) in (3, 4), form, "send takes dest, payload[, reply-to]")
    dest = ev.eval(form[1], env)
    payload = ev.eval(form[2], env)
    reply = ev.eval(form[3], env) if len(form) == 4 else None
    ev.bridge.send_pattern(dest, payload, reply)
    return None


def _sf_broadcast(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) in (3, 4), form, "broadcast takes dest, payload[, reply-to]")
    dest = ev.eval(form[1], env)
    payload = ev.eval(form[2], env)
    reply = ev.eval(form[3], env) if len(form) == 4 else None
    ev.bridge.broadcast_pattern(dest, payload, reply)
    return None


def _sf_become(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) >= 2, form, "become needs a behavior name")
    name = ev._name(form, 1)
    args = [ev.eval(a, env) for a in form[2:]]
    ev.bridge.become(name, args)
    return None


def _sf_create(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) >= 2, form, "create needs a behavior name")
    name = ev._name(form, 1)
    args = [ev.eval(a, env) for a in form[2:]]
    return ev.bridge.create(name, args)


def _sf_create_actorspace(ev: Evaluator, form: list, env: Env) -> Any:
    cap = ev.eval(form[1], env) if len(form) > 1 else None
    return ev.bridge.create_actorspace(cap)


def _sf_make_visible(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(3 <= len(form) <= 5, form,
               "make-visible takes target, attrs[, space[, capability]]")
    target = ev.eval(form[1], env)
    attrs = ev.eval(form[2], env)
    space = ev.eval(form[3], env) if len(form) > 3 else None
    cap = ev.eval(form[4], env) if len(form) > 4 else None
    ev.bridge.make_visible(target, attrs, space, cap)
    return None


def _sf_make_invisible(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(2 <= len(form) <= 4, form,
               "make-invisible takes target[, space[, capability]]")
    target = ev.eval(form[1], env)
    space = ev.eval(form[2], env) if len(form) > 2 else None
    cap = ev.eval(form[3], env) if len(form) > 3 else None
    ev.bridge.make_invisible(target, space, cap)
    return None


def _sf_change_attributes(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(3 <= len(form) <= 5, form,
               "change-attributes takes target, attrs[, space[, capability]]")
    target = ev.eval(form[1], env)
    attrs = ev.eval(form[2], env)
    space = ev.eval(form[3], env) if len(form) > 3 else None
    cap = ev.eval(form[4], env) if len(form) > 4 else None
    ev.bridge.change_attributes(target, attrs, space, cap)
    return None


def _sf_new_capability(ev: Evaluator, form: list, env: Env) -> Any:
    return ev.bridge.new_capability()


def _sf_terminate(ev: Evaluator, form: list, env: Env) -> Any:
    ev.bridge.terminate()
    return None


def _sf_schedule(ev: Evaluator, form: list, env: Env) -> Any:
    ev._expect(len(form) == 3, form, "schedule takes delay and payload")
    delay = ev.eval(form[1], env)
    payload = ev.eval(form[2], env)
    ev.bridge.schedule(delay, payload)
    return None


def _sf_print(ev: Evaluator, form: list, env: Env) -> Any:
    from .builtins import _to_str

    parts = [_to_str(ev.eval(a, env)) for a in form[1:]]
    ev.bridge.emit(" ".join(parts))
    return None


_SPECIAL = {
    "quote": _sf_quote,
    "if": _sf_if,
    "let": _sf_let,
    "begin": _sf_begin,
    "and": _sf_and,
    "or": _sf_or,
    "set!": _sf_set,
    "define": _sf_define,
    "while": _sf_while,
    "for": _sf_for,
    "self": _sf_self,
    "host-space": _sf_host_space,
    "reply-addr": _sf_reply_addr,
    "now": _sf_now,
    "send-to": _sf_send_to,
    "send": _sf_send,
    "broadcast": _sf_broadcast,
    "become": _sf_become,
    "create": _sf_create,
    "create-actorspace": _sf_create_actorspace,
    "make-visible": _sf_make_visible,
    "make-invisible": _sf_make_invisible,
    "change-attributes": _sf_change_attributes,
    "new-capability": _sf_new_capability,
    "terminate": _sf_terminate,
    "schedule": _sf_schedule,
    "print": _sf_print,
}


_SHARED_BUILTINS: "Env | None" = None


def base_env() -> Env:
    """A child of the shared (frozen) builtins frame.

    Callers get a mutable frame for ``define``; the builtins themselves
    are shared across all actors and invocations and cannot be rebound.
    """
    global _SHARED_BUILTINS
    if _SHARED_BUILTINS is None:
        from .env import FrozenEnv

        _SHARED_BUILTINS = FrozenEnv(dict(BUILTINS))
    return _SHARED_BUILTINS.child()
