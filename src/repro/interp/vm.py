"""The bytecode VM executing :class:`~repro.interp.compiler.Code`.

A straightforward stack machine over the same :class:`~repro.interp.env.Env`
chain and :class:`EffectBridge` the tree-walking evaluator uses, so the
two engines are interchangeable per behavior.  Fuel-limited like the
evaluator: each body execution may run at most ``max_steps`` instructions.
"""

from __future__ import annotations

import copy
from typing import Any

from repro.core.errors import InterpreterRuntimeError

from .compiler import (
    Code,
    OP_CALL,
    OP_CONST,
    OP_DEFINE,
    OP_EFFECT,
    OP_ENTER,
    OP_EXIT,
    OP_ITER_NEW,
    OP_ITER_NEXT,
    OP_JIF,
    OP_JIF_KEEP,
    OP_JTRUE_KEEP,
    OP_JUMP,
    OP_LOAD,
    OP_NORM,
    OP_POP,
    OP_QUOTE,
    OP_STORE,
)
from .env import Env
from .evaluator import EffectBridge


class VM:
    """Executes compiled bodies against an environment and a bridge."""

    def __init__(self, bridge: EffectBridge, max_steps: int = 100_000):
        self.bridge = bridge
        self.max_steps = max_steps

    def run(self, code: Code, env: Env) -> Any:
        instructions = code.instructions
        stack: list[Any] = []
        loops: list[list] = []  # (list, index) pairs for for-loops
        pc = 0
        steps = 0
        n = len(instructions)
        current_env = env
        env_stack: list[Env] = []
        while pc < n:
            steps += 1
            if steps > self.max_steps:
                raise InterpreterRuntimeError(
                    f"script exceeded {self.max_steps} vm steps"
                )
            op, arg = instructions[pc]
            pc += 1
            if op == OP_CONST:
                stack.append(arg)
            elif op == OP_LOAD:
                stack.append(current_env.lookup(arg))
            elif op == OP_STORE:
                current_env.assign(arg, stack[-1])
            elif op == OP_DEFINE:
                current_env.define(arg, stack[-1])
            elif op == OP_POP:
                stack.pop()
            elif op == OP_JUMP:
                pc = arg
            elif op == OP_JIF:
                value = stack.pop()
                if value is False or value is None:
                    pc = arg
            elif op == OP_JIF_KEEP:
                if stack[-1] is False or stack[-1] is None:
                    pc = arg
            elif op == OP_JTRUE_KEEP:
                if not (stack[-1] is False or stack[-1] is None):
                    pc = arg
            elif op == OP_NORM:
                if stack[-1] is False or stack[-1] is None:
                    stack[-1] = False
            elif op == OP_CALL:
                args = stack[-arg:] if arg else []
                del stack[len(stack) - arg:]
                fn = stack.pop()
                if not callable(fn):
                    raise InterpreterRuntimeError(f"not callable: {fn!r}")
                try:
                    stack.append(fn(*args))
                except InterpreterRuntimeError:
                    raise
                except Exception as exc:
                    raise InterpreterRuntimeError(
                        f"error calling {fn!r}: {exc}"
                    ) from exc
            elif op == OP_ENTER:
                env_stack.append(current_env)
                current_env = current_env.child()
            elif op == OP_EXIT:
                current_env = env_stack.pop()
            elif op == OP_QUOTE:
                stack.append(copy.deepcopy(arg))
            elif op == OP_ITER_NEW:
                items = stack.pop()
                if not isinstance(items, list):
                    raise InterpreterRuntimeError(
                        f"for: expected a list, got {items!r}"
                    )
                loops.append([items, 0])
            elif op == OP_ITER_NEXT:
                frame = loops[-1]
                if frame[1] >= len(frame[0]):
                    loops.pop()
                    pc = arg
                else:
                    stack.append(frame[0][frame[1]])
                    frame[1] += 1
            elif op == OP_EFFECT:
                name, count = arg
                operands = stack[-count:] if count else []
                if count:
                    del stack[len(stack) - count:]
                stack.append(self._effect(name, operands))
            else:  # pragma: no cover - compiler/vm agree on the ISA
                raise AssertionError(f"unknown opcode {op}")
        if not stack:  # pragma: no cover - bodies always leave one value
            return None
        return stack[-1]

    # -- effect dispatch -------------------------------------------------------

    def _effect(self, name: str, operands: list) -> Any:
        bridge = self.bridge
        if name == "self":
            return bridge.self_address()
        if name == "host-space":
            return bridge.host_space()
        if name == "reply-addr":
            return bridge.reply_addr()
        if name == "now":
            return bridge.now()
        if name == "send-to":
            bridge.send_to(operands[0], operands[1])
            return None
        if name == "send":
            bridge.send_pattern(operands[0], operands[1],
                                operands[2] if len(operands) > 2 else None)
            return None
        if name == "broadcast":
            bridge.broadcast_pattern(operands[0], operands[1],
                                     operands[2] if len(operands) > 2 else None)
            return None
        if name == "become":
            bridge.become(operands[0], operands[1:])
            return None
        if name == "create":
            return bridge.create(operands[0], operands[1:])
        if name == "create-actorspace":
            return bridge.create_actorspace(operands[0] if operands else None)
        if name == "make-visible":
            ops = operands + [None] * (4 - len(operands))
            bridge.make_visible(ops[0], ops[1], ops[2], ops[3])
            return None
        if name == "make-invisible":
            ops = operands + [None] * (3 - len(operands))
            bridge.make_invisible(ops[0], ops[1], ops[2])
            return None
        if name == "change-attributes":
            ops = operands + [None] * (4 - len(operands))
            bridge.change_attributes(ops[0], ops[1], ops[2], ops[3])
            return None
        if name == "new-capability":
            return bridge.new_capability()
        if name == "terminate":
            bridge.terminate()
            return None
        if name == "schedule":
            bridge.schedule(operands[0], operands[1])
            return None
        if name == "print":
            from .builtins import _to_str

            bridge.emit(" ".join(_to_str(o) for o in operands))
            return None
        raise AssertionError(f"unknown effect {name}")  # pragma: no cover
