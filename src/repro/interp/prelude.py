"""The prelude: a standard library of behavior scripts.

The prototype loads behaviors at run time; this module ships the stock
ones every system wants, written in the script language itself (they
double as a conformance suite for the interpreter).  Load them with::

    from repro.interp import BehaviorLibrary, load_prelude
    library = load_prelude()          # or load_prelude(existing_library)

Provided behaviors
------------------
``cell v``
    A mutable reference: ``[get]`` replies the value to ``reply-addr``,
    ``[put v]`` replaces it, ``[swap v]`` replaces *and* replies the old
    value — the classic actor shared-variable.
``accumulator total``
    ``[add n]`` accumulates; ``[report]`` replies the total.
``forwarder target``
    Relays every ``[relay payload]`` to ``target`` unchanged.
``router table-keys table-vals``
    Content-based router: ``[route key payload]`` sends ``payload`` to the
    pattern registered for ``key`` (parallel lists form the table).
``ring-member next``
    ``[token k]`` decrements ``k`` and passes the token to ``next``;
    announces ``done`` to ``reply-addr`` when ``k`` reaches zero — the
    classic ring latency microbenchmark.
``registrar``
    ``[publish attrs]`` makes *itself* visible under ``attrs`` (a
    self-registering service, section 3's "objects may register
    themselves" done ActorSpace-style).
``broadcaster dest``
    ``[tell payload]`` broadcasts ``payload`` to the stored destination
    pattern.
"""

from __future__ import annotations

from .behavior_loader import BehaviorLibrary

PRELUDE_SOURCE = """
(behavior cell (value)
  (method get ()
    (send-to (reply-addr) value))
  (method put (v)
    (become cell v))
  (method swap (v)
    (send-to (reply-addr) value)
    (become cell v)))

(behavior accumulator (total)
  (method add (n)
    (become accumulator (+ total n)))
  (method report ()
    (send-to (reply-addr) total)))

(behavior forwarder (target)
  (method relay (payload)
    (send-to target payload)))

(behavior router (keys dests)
  (method route (key payload)
    (let ((n (len keys)))
      (define i 0)
      (define found false)
      (while (< i n)
        (if (= (nth keys i) key)
            (begin
              (send (nth dests i) payload)
              (set! found true)))
        (set! i (+ i 1)))
      (if (not found)
          (print "router: no route for" key)))))

(behavior ring-member (next)
  (method token (k reply)
    (if (<= k 0)
        (send-to reply (list "done" k))
        (send-to next (list "token" (- k 1) reply)))))

(behavior registrar ()
  (method publish (attrs)
    (make-visible (self) attrs)))

(behavior broadcaster (dest)
  (method tell (payload)
    (broadcast dest payload)))
"""


def load_prelude(library: BehaviorLibrary | None = None) -> BehaviorLibrary:
    """Load the prelude into ``library`` (a fresh one by default)."""
    library = library or BehaviorLibrary()
    library.load(PRELUDE_SOURCE)
    return library


def build_ring(system, library: BehaviorLibrary, size: int,
               nodes: bool = True):
    """Construct a ring of ``size`` interpreted ``ring-member`` actors.

    Returns the entry actor's address.  Members are spread across nodes
    when ``nodes`` is set (a latency microbenchmark wants real hops).
    """
    from .actor_interface import InterpretedBehavior

    if size < 1:
        raise ValueError("ring needs at least one member")
    node_count = system.topology.node_count
    # Build backwards so each member knows its successor at create time.
    next_addr = None
    addresses = []
    for i in reversed(range(size)):
        node = i % node_count if nodes else 0
        behavior = InterpretedBehavior(
            library, library.get("ring-member"),
            [next_addr],
        )
        next_addr = system.create_actor(behavior, node=node)
        addresses.append(next_addr)
    # Close the ring: the first-created member (tail) points at the head.
    head = next_addr
    tail_behavior = system.actor_record(addresses[0]).behavior
    tail_behavior.state["next"] = head
    return head
