"""The byte-compiler: section 7's planned extension, implemented.

"A future extension will include a byte-compiler which will compile the
code into an intermediary form, similar to early implementations of
other object-oriented programming languages (such as SmallTalk)."

This module compiles parsed behavior bodies into a compact linear
bytecode executed by :mod:`repro.interp.vm`.  The compiled engine is
semantically identical to the tree-walking evaluator (a hypothesis
property test cross-checks them on random programs) and measurably
faster, which E13 quantifies.

Instruction set (op, arg):

======== =============================================================
CONST    push a literal value
LOAD     push the value of a variable
STORE    ``set!``: rebind nearest binding to popped value; push it back
DEFINE   bind name in the current frame to popped value; push it back
POP      discard top of stack
JUMP     unconditional jump to instruction index
JIF      jump if popped value is falsy (False/None)
JIF_KEEP jump if *top* is falsy without popping (for and/or chains)
POP_KEEP pop unconditionally (companion of JIF_KEEP fall-through)
CALL     arg=n: pop n args + callable, push result
ENTER    push a fresh scope frame
EXIT     pop the innermost scope frame
EFFECT   arg=(name, n): pop n operands, run the named bridge effect,
         push its result
QUOTE    push deep-copied quoted datum (symbols already stripped)
======== =============================================================

``become``/``create`` compile their *behavior name* as a constant operand
of the EFFECT call, matching the evaluator's call-by-name semantics.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import InterpreterRuntimeError

from .astnodes import Symbol, to_source
from .evaluator import _strip_symbols

# Integer opcodes (VM dispatch is measurably faster than string compare).
(OP_CONST, OP_LOAD, OP_STORE, OP_DEFINE, OP_POP, OP_JUMP, OP_JIF,
 OP_JIF_KEEP, OP_JTRUE_KEEP, OP_NORM, OP_CALL, OP_ENTER, OP_EXIT,
 OP_QUOTE, OP_ITER_NEW, OP_ITER_NEXT, OP_EFFECT) = range(17)

#: Mnemonic -> opcode (the Compiler emits mnemonics for readability).
OPCODES = {
    "CONST": OP_CONST, "LOAD": OP_LOAD, "STORE": OP_STORE,
    "DEFINE": OP_DEFINE, "POP": OP_POP, "JUMP": OP_JUMP, "JIF": OP_JIF,
    "JIF_KEEP": OP_JIF_KEEP, "JTRUE_KEEP": OP_JTRUE_KEEP,
    "NORM_AND": OP_NORM, "NORM_OR": OP_NORM, "CALL": OP_CALL,
    "ENTER": OP_ENTER, "EXIT": OP_EXIT, "QUOTE": OP_QUOTE,
    "ITER_NEW": OP_ITER_NEW, "ITER_NEXT": OP_ITER_NEXT,
    "EFFECT": OP_EFFECT,
}


class Code:
    """A compiled body: a flat instruction list."""

    __slots__ = ("instructions", "source_hint")

    def __init__(self, instructions: list[tuple], source_hint: str = ""):
        self.instructions = instructions
        self.source_hint = source_hint

    def __len__(self):
        return len(self.instructions)

    def __repr__(self):
        return f"<Code {len(self.instructions)} instrs {self.source_hint!r}>"


#: Effect forms with fixed arity ranges: name -> (min_args, max_args).
_EFFECTS: dict[str, tuple[int, int]] = {
    "self": (0, 0),
    "host-space": (0, 0),
    "reply-addr": (0, 0),
    "now": (0, 0),
    "send-to": (2, 2),
    "send": (2, 3),
    "broadcast": (2, 3),
    "create-actorspace": (0, 1),
    "make-visible": (2, 4),
    "make-invisible": (1, 3),
    "change-attributes": (2, 4),
    "new-capability": (0, 0),
    "terminate": (0, 0),
    "schedule": (2, 2),
}


class Compiler:
    """Single-pass compiler from parsed forms to :class:`Code`."""

    def __init__(self):
        self.instructions: list[tuple] = []

    # -- emission helpers ---------------------------------------------------

    def emit(self, op: str, arg: Any = None) -> int:
        self.instructions.append((OPCODES[op], arg))
        return len(self.instructions) - 1

    def patch(self, index: int, arg: Any) -> None:
        op, _old = self.instructions[index]
        self.instructions[index] = (op, arg)

    @property
    def here(self) -> int:
        return len(self.instructions)

    # -- top level ------------------------------------------------------------

    def compile_body(self, body: list) -> Code:
        """Compile a sequence of forms; the last value is left on the stack."""
        if not body:
            self.emit("CONST", None)
        for i, form in enumerate(body):
            self.compile(form)
            if i < len(body) - 1:
                self.emit("POP")
        return Code(self.instructions,
                    source_hint=to_source(body[0]) if body else "")

    # -- expression dispatch ------------------------------------------------------

    def compile(self, form: Any) -> None:
        if isinstance(form, Symbol):
            self.emit("LOAD", str(form))
            return
        if not isinstance(form, list):
            self.emit("CONST", form)
            return
        if not form:
            raise InterpreterRuntimeError("cannot compile the empty form ()")
        head = form[0]
        if isinstance(head, Symbol):
            name = str(head)
            handler = getattr(self, f"_c_{name.replace('!', '_bang').replace('-', '_')}", None)
            if name in _SPECIAL_NAMES and handler is not None:
                handler(form)
                return
            if name in _EFFECTS:
                self._compile_effect(name, form)
                return
            if name in ("become", "create"):
                self._compile_behavior_effect(name, form)
                return
            if name == "print":
                self._compile_print(form)
                return
        # Plain application: callable then args, CALL n.
        self.compile(head)
        for arg in form[1:]:
            self.compile(arg)
        self.emit("CALL", len(form) - 1)

    # -- special forms ----------------------------------------------------------

    def _expect(self, cond: bool, form: list, why: str) -> None:
        if not cond:
            raise InterpreterRuntimeError(f"{why} in {to_source(form)}")

    def _c_quote(self, form):
        self._expect(len(form) == 2, form, "quote takes one argument")
        self.emit("QUOTE", _strip_symbols(form[1]))

    def _c_if(self, form):
        self._expect(len(form) in (3, 4), form, "if takes 2 or 3 arguments")
        self.compile(form[1])
        jif = self.emit("JIF")
        self.compile(form[2])
        jend = self.emit("JUMP")
        self.patch(jif, self.here)
        if len(form) == 4:
            self.compile(form[3])
        else:
            self.emit("CONST", None)
        self.patch(jend, self.here)

    def _c_let(self, form):
        self._expect(len(form) >= 3 and isinstance(form[1], list), form,
                     "let needs a binding list and a body")
        self.emit("ENTER")
        for binding in form[1]:
            self._expect(
                isinstance(binding, list) and len(binding) == 2
                and isinstance(binding[0], Symbol),
                form, "let bindings are (name expr) pairs")
            self.compile(binding[1])
            self.emit("DEFINE", str(binding[0]))
            self.emit("POP")
        self._sequence(form[2:])
        self.emit("EXIT")

    def _c_begin(self, form):
        self._sequence(form[1:])

    def _sequence(self, forms):
        if not forms:
            self.emit("CONST", None)
            return
        for i, sub in enumerate(forms):
            self.compile(sub)
            if i < len(forms) - 1:
                self.emit("POP")

    def _c_and(self, form):
        if len(form) == 1:
            self.emit("CONST", True)
            return
        ends = []
        for i, sub in enumerate(form[1:]):
            self.compile(sub)
            if i < len(form) - 2:
                ends.append(self.emit("JIF_KEEP"))
                self.emit("POP")
        after = self.here
        for j in ends:
            self.patch(j, after)
        # A falsy short-circuit leaves the falsy value; normalize to False.
        self.emit("NORM_AND")

    def _c_or(self, form):
        if len(form) == 1:
            self.emit("CONST", False)
            return
        ends = []
        for i, sub in enumerate(form[1:]):
            self.compile(sub)
            if i < len(form) - 2:
                ends.append(self.emit("JTRUE_KEEP"))
                self.emit("POP")
        after = self.here
        for j in ends:
            self.patch(j, after)
        self.emit("NORM_OR")

    def _c_set_bang(self, form):
        self._expect(len(form) == 3 and isinstance(form[1], Symbol), form,
                     "set! takes a name and a value")
        self.compile(form[2])
        self.emit("STORE", str(form[1]))

    def _c_define(self, form):
        self._expect(len(form) == 3 and isinstance(form[1], Symbol), form,
                     "define takes a name and a value")
        self.compile(form[2])
        self.emit("DEFINE", str(form[1]))

    def _c_while(self, form):
        """Loops evaluate for effect; their value is ``nil``."""
        self._expect(len(form) >= 2, form, "while needs a condition")
        top = self.here
        self.compile(form[1])
        jexit = self.emit("JIF")
        self._sequence(form[2:])
        self.emit("POP")
        self.emit("JUMP", top)
        self.patch(jexit, self.here)
        self.emit("CONST", None)

    def _c_for(self, form):
        self._expect(len(form) >= 3 and isinstance(form[1], Symbol), form,
                     "for needs (for name list body...)")
        name = str(form[1])
        self.compile(form[2])
        self.emit("ITER_NEW")           # moves the list to the VM loop stack
        top = self.here
        jdone = self.emit("ITER_NEXT")  # pushes next item, or jumps when done
        self.emit("ENTER")
        self.emit("DEFINE", name)
        self.emit("POP")
        self._sequence(form[3:])
        self.emit("POP")
        self.emit("EXIT")
        self.emit("JUMP", top)
        self.patch(jdone, self.here)    # ITER_NEXT also pops the loop stack
        self.emit("CONST", None)

    # -- effects ---------------------------------------------------------------------

    def _compile_effect(self, name: str, form: list) -> None:
        lo, hi = _EFFECTS[name]
        n = len(form) - 1
        self._expect(lo <= n <= hi, form,
                     f"{name} takes {lo}..{hi} arguments")
        for arg in form[1:]:
            self.compile(arg)
        self.emit("EFFECT", (name, n))

    def _compile_behavior_effect(self, name: str, form: list) -> None:
        self._expect(len(form) >= 2 and isinstance(form[1], Symbol), form,
                     f"{name} needs a behavior name")
        self.emit("CONST", str(form[1]))
        for arg in form[2:]:
            self.compile(arg)
        self.emit("EFFECT", (name, len(form) - 1))

    def _compile_print(self, form: list) -> None:
        for arg in form[1:]:
            self.compile(arg)
        self.emit("EFFECT", ("print", len(form) - 1))


_SPECIAL_NAMES = {
    "quote", "if", "let", "begin", "and", "or", "set!", "define",
    "while", "for",
}


def compile_body(body: list) -> Code:
    """Compile a method body into :class:`Code`."""
    return Compiler().compile_body(list(body))
