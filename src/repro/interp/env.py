"""Lexical environments for the behavior interpreter."""

from __future__ import annotations

from typing import Any

from repro.core.errors import InterpreterRuntimeError


class Env:
    """A frame of variable bindings with a parent chain."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: dict[str, Any] | None = None, parent: "Env | None" = None):
        self.bindings: dict[str, Any] = dict(bindings or {})
        self.parent = parent

    def lookup(self, name: str) -> Any:
        env: Env | None = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        raise InterpreterRuntimeError(f"unbound variable: {name}")

    def is_bound(self, name: str) -> bool:
        env: Env | None = self
        while env is not None:
            if name in env.bindings:
                return True
            env = env.parent
        return False

    def define(self, name: str, value: Any) -> None:
        """Bind ``name`` in *this* frame (shadowing any outer binding)."""
        self.bindings[name] = value

    #: Frames with ``mutable = False`` reject define/assign (builtins).
    mutable = True

    def assign(self, name: str, value: Any) -> None:
        """Rebind the nearest existing binding of ``name`` (``set!``)."""
        env: Env | None = self
        while env is not None:
            if name in env.bindings:
                if not env.mutable:
                    raise InterpreterRuntimeError(
                        f"cannot rebind builtin: {name}")
                env.bindings[name] = value
                return
            env = env.parent
        raise InterpreterRuntimeError(f"cannot set! unbound variable: {name}")

    def child(self, bindings: dict[str, Any] | None = None) -> "Env":
        return Env(bindings, parent=self)

    def flatten(self) -> dict[str, Any]:
        """All visible bindings (inner shadowing outer) — used by ``become``
        to snapshot the state a behavior carries forward."""
        frames = []
        env: Env | None = self
        while env is not None:
            frames.append(env.bindings)
            env = env.parent
        merged: dict[str, Any] = {}
        for frame in reversed(frames):
            merged.update(frame)
        return merged

    def __repr__(self):
        depth = 0
        env = self.parent
        while env is not None:
            depth += 1
            env = env.parent
        return f"<Env {len(self.bindings)} bindings, depth {depth}>"


class FrozenEnv(Env):
    """An immutable frame — used for the shared builtins table.

    Sharing one builtins frame across every invocation (instead of
    copying ~60 bindings per message) is a large win for short methods;
    freezing it keeps one actor's ``set!`` from rebinding a builtin for
    everyone else.
    """

    __slots__ = ()
    mutable = False

    def define(self, name, value) -> None:
        raise InterpreterRuntimeError(f"cannot rebind builtin frame ({name})")
