"""Behavior definitions and the run-time-loadable behavior library.

A behavior script has the shape::

    (behavior counter (count)
      (method incr (by)
        (become counter (+ count by)))
      (method query ()
        (send-to (reply-addr) count)))

``behavior`` declares the acquaintance parameters (the state captured at
``create``/``become`` time); each ``method`` declares the communication
parameters bound from the incoming message.  Messages to interpreted
actors are lists ``[method-name, arg...]``.

A :class:`BehaviorLibrary` maps names to definitions and can absorb new
scripts while the system runs — the run-time loadability the prototype
chose an interpreter for (section 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import InterpreterSyntaxError

from .astnodes import Symbol, is_symbol, to_source
from .parser import parse_program


@dataclass(frozen=True)
class MethodDef:
    """One method: its parameter names and body forms."""

    name: str
    params: tuple[str, ...]
    body: tuple


@dataclass(frozen=True)
class BehaviorDef:
    """One behavior: acquaintance parameters plus a method table."""

    name: str
    params: tuple[str, ...]
    methods: dict[str, MethodDef]

    def method(self, name: str) -> MethodDef | None:
        return self.methods.get(name)


def _param_list(form, context: str) -> tuple[str, ...]:
    if not isinstance(form, list) or not all(isinstance(p, Symbol) for p in form):
        raise InterpreterSyntaxError(
            f"{context}: parameter list must be a list of symbols, got {to_source(form)}"
        )
    names = tuple(str(p) for p in form)
    if len(set(names)) != len(names):
        raise InterpreterSyntaxError(f"{context}: duplicate parameter names in {names}")
    return names


def parse_behavior(form) -> BehaviorDef:
    """Parse one ``(behavior ...)`` form into a :class:`BehaviorDef`."""
    if (
        not isinstance(form, list)
        or len(form) < 3
        or not is_symbol(form[0], "behavior")
        or not isinstance(form[1], Symbol)
    ):
        raise InterpreterSyntaxError(
            f"expected (behavior name (params) methods...), got {to_source(form)}"
        )
    name = str(form[1])
    params = _param_list(form[2], f"behavior {name}")
    methods: dict[str, MethodDef] = {}
    for method_form in form[3:]:
        if (
            not isinstance(method_form, list)
            or len(method_form) < 3
            or not is_symbol(method_form[0], "method")
            or not isinstance(method_form[1], Symbol)
        ):
            raise InterpreterSyntaxError(
                f"behavior {name}: expected (method name (params) body...), "
                f"got {to_source(method_form)}"
            )
        mname = str(method_form[1])
        if mname in methods:
            raise InterpreterSyntaxError(f"behavior {name}: duplicate method {mname}")
        mparams = _param_list(method_form[2], f"method {name}.{mname}")
        methods[mname] = MethodDef(mname, mparams, tuple(method_form[3:]))
    return BehaviorDef(name, params, methods)


class BehaviorLibrary:
    """A mutable registry of behavior definitions, loadable at run time.

    Also owns the bytecode cache for the compiled engine: method bodies
    are compiled on first dispatch and the cache entry is invalidated
    when its behavior is re-loaded (hot-swap keeps working under both
    engines).
    """

    def __init__(self):
        self._defs: dict[str, BehaviorDef] = {}
        self._code_cache: dict[tuple[str, str], object] = {}

    def load(self, source: str) -> list[BehaviorDef]:
        """Parse ``source`` and register every behavior it defines.

        Re-loading a name replaces the old definition — actors created
        afterwards (or ``become``-ing it) pick up the new code, which is
        the hot-swap story the interpreter design buys.
        """
        loaded = []
        for form in parse_program(source):
            definition = parse_behavior(form)
            self._defs[definition.name] = definition
            loaded.append(definition)
            # Drop stale compiled code for every re-loaded behavior.
            for key in [k for k in self._code_cache if k[0] == definition.name]:
                del self._code_cache[key]
        return loaded

    def compiled(self, behavior_name: str, method: MethodDef):
        """The compiled :class:`~repro.interp.compiler.Code` for a method."""
        key = (behavior_name, method.name)
        code = self._code_cache.get(key)
        if code is None:
            from .compiler import compile_body

            code = compile_body(list(method.body))
            self._code_cache[key] = code
        return code

    def get(self, name: str) -> BehaviorDef:
        definition = self._defs.get(name)
        if definition is None:
            raise InterpreterSyntaxError(f"unknown behavior: {name}")
        return definition

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def names(self) -> list[str]:
        return sorted(self._defs)

    def __repr__(self):
        return f"<BehaviorLibrary {self.names()}>"
