"""The prototype's behavior-script interpreter (paper section 7).

Load behavior scripts at run time, create interpreted actors, and let
them coordinate through the same ActorSpace primitives native (Python)
behaviors use::

    from repro import ActorSpaceSystem
    from repro.interp import BehaviorLibrary, InterpretedBehavior

    library = BehaviorLibrary()
    library.load('''
      (behavior counter (count)
        (method incr (by) (become counter (+ count by)))
        (method query () (send-to (reply-addr) count)))
    ''')
    system = ActorSpaceSystem()
    actor = system.create_actor(
        InterpretedBehavior(library, library.get("counter"), [0]))
    system.send_to(actor, ["incr", 5])
"""

from .actor_interface import ActorInterface, InterpretedBehavior, PortCounters
from .astnodes import Symbol, to_source
from .behavior_loader import BehaviorDef, BehaviorLibrary, MethodDef, parse_behavior
from .builtins import BUILTINS
from .compiler import Code, compile_body
from .vm import VM
from .env import Env
from .evaluator import Evaluator, base_env
from .lexer import Token, tokenize
from .parser import parse_one, parse_program
from .prelude import PRELUDE_SOURCE, build_ring, load_prelude

__all__ = [
    "ActorInterface",
    "BUILTINS",
    "BehaviorDef",
    "BehaviorLibrary",
    "Code",
    "VM",
    "compile_body",
    "Env",
    "Evaluator",
    "InterpretedBehavior",
    "MethodDef",
    "PRELUDE_SOURCE",
    "PortCounters",
    "build_ring",
    "load_prelude",
    "Symbol",
    "Token",
    "base_env",
    "parse_behavior",
    "parse_one",
    "parse_program",
    "to_source",
    "tokenize",
]
