"""AST value types for the behavior-script language.

The parsed representation is deliberately Lisp-like: programs are nested
Python lists of atoms, where atoms are numbers, strings, booleans,
``None`` (written ``nil``), and :class:`Symbol`.  Using plain lists keeps
the evaluator a straightforward tree walk — "a parsed representation of
the behavior specification" exactly as section 7.2 describes.
"""

from __future__ import annotations


class Symbol(str):
    """An interned-by-value identifier.  Subclasses ``str`` so symbol
    tables are plain dicts; distinct from strings at the type level so
    the evaluator can tell ``foo`` from ``"foo"``."""

    __slots__ = ()

    def __repr__(self):
        return f"Symbol({str.__repr__(self)})"


def is_symbol(x: object, name: str | None = None) -> bool:
    """Is ``x`` a symbol (optionally: the symbol ``name``)?"""
    if not isinstance(x, Symbol):
        return False
    return name is None or str(x) == name


def to_source(form: object) -> str:
    """Render a form back to surface syntax (for error messages and tests)."""
    if isinstance(form, list):
        return "(" + " ".join(to_source(f) for f in form) + ")"
    if isinstance(form, Symbol):
        return str(form)
    if isinstance(form, bool):
        return "true" if form else "false"
    if form is None:
        return "nil"
    if isinstance(form, str):
        escaped = form.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(form)
