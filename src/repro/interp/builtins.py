"""Builtin (pure) functions available to behavior scripts.

These are the computational primitives; everything with an *effect* —
sending, creating, becoming — is a special form handled by the evaluator
through the ActorInterface, so that effects are impossible to smuggle
into a pure position.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.core.errors import InterpreterRuntimeError


def _num(op: str, x: Any) -> float | int:
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        raise InterpreterRuntimeError(f"{op}: expected a number, got {x!r}")
    return x


def _arith(op: str, fn: Callable, identity: int | None = None):
    def impl(*args):
        if not args:
            if identity is None:
                raise InterpreterRuntimeError(f"{op}: needs at least one argument")
            return identity
        values = [_num(op, a) for a in args]
        acc = values[0]
        if len(values) == 1 and op == "-":
            return -acc
        if len(values) == 1 and op == "/":
            return 1 / acc
        for v in values[1:]:
            acc = fn(acc, v)
        return acc

    return impl


def _chain(op: str, fn: Callable):
    def impl(*args):
        if len(args) < 2:
            raise InterpreterRuntimeError(f"{op}: needs at least two arguments")
        return all(fn(_cmp_ok(op, a), _cmp_ok(op, b)) for a, b in zip(args, args[1:]))

    return impl


def _cmp_ok(op: str, x: Any):
    if isinstance(x, (int, float, str)) and not isinstance(x, bool):
        return x
    raise InterpreterRuntimeError(f"{op}: cannot compare {x!r}")


def _list_arg(op: str, x: Any) -> list:
    if not isinstance(x, list):
        raise InterpreterRuntimeError(f"{op}: expected a list, got {x!r}")
    return x


def _safe_div(a, b):
    if b == 0:
        raise InterpreterRuntimeError("division by zero")
    return a / b


def _safe_mod(a, b):
    if b == 0:
        raise InterpreterRuntimeError("modulo by zero")
    return a % b


def _nth(lst, i):
    lst = _list_arg("nth", lst)
    if not isinstance(i, int) or isinstance(i, bool) or not (0 <= i < len(lst)):
        raise InterpreterRuntimeError(f"nth: index {i!r} out of range for {len(lst)}-list")
    return lst[i]


BUILTINS: dict[str, Callable[..., Any]] = {
    # arithmetic
    "+": _arith("+", lambda a, b: a + b, identity=0),
    "-": _arith("-", lambda a, b: a - b),
    "*": _arith("*", lambda a, b: a * b, identity=1),
    "/": _arith("/", _safe_div),
    "mod": lambda a, b: _safe_mod(_num("mod", a), _num("mod", b)),
    "abs": lambda x: abs(_num("abs", x)),
    "min": lambda *xs: min(_num("min", x) for x in xs),
    "max": lambda *xs: max(_num("max", x) for x in xs),
    "floor": lambda x: math.floor(_num("floor", x)),
    "ceil": lambda x: math.ceil(_num("ceil", x)),
    "sqrt": lambda x: math.sqrt(_num("sqrt", x)),
    # comparison
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": _chain("<", lambda a, b: a < b),
    ">": _chain(">", lambda a, b: a > b),
    "<=": _chain("<=", lambda a, b: a <= b),
    ">=": _chain(">=", lambda a, b: a >= b),
    "not": lambda x: x is False or x is None,
    # lists
    "list": lambda *xs: list(xs),
    "cons": lambda x, lst: [x] + _list_arg("cons", lst),
    "head": lambda lst: _nth(lst, 0),
    "tail": lambda lst: _list_arg("tail", lst)[1:],
    "nth": _nth,
    "len": lambda x: len(x) if isinstance(x, (list, str)) else _list_arg("len", x),
    "append": lambda *ls: sum((_list_arg("append", l) for l in ls), []),
    "reverse": lambda lst: list(reversed(_list_arg("reverse", lst))),
    "empty?": lambda lst: len(_list_arg("empty?", lst)) == 0,
    "range": lambda *a: list(range(*[_num("range", x) for x in a])),
    "contains?": lambda lst, x: x in _list_arg("contains?", lst),
    # strings
    "str": lambda *xs: "".join(_to_str(x) for x in xs),
    "symbol->str": lambda s: str(s),
    "split": lambda s, sep: (s.split(sep) if isinstance(s, str) else
                             _list_arg("split", s)),
    # type predicates
    "number?": lambda x: isinstance(x, (int, float)) and not isinstance(x, bool),
    "string?": lambda x: isinstance(x, str),
    "list?": lambda x: isinstance(x, list),
    "nil?": lambda x: x is None,
    "bool?": lambda x: isinstance(x, bool),
}


def _to_str(x: Any) -> str:
    if isinstance(x, str):
        return x
    if isinstance(x, bool):
        return "true" if x else "false"
    if x is None:
        return "nil"
    if isinstance(x, float) and x == int(x):
        return str(int(x))
    return str(x)
