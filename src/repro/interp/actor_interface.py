"""The ActorInterface: bridge between interpreted behaviors and the runtime.

Fig. 2 of the paper shows the pipeline this module realizes: the
**interpreter** evaluates method bodies; the **ActorInterface** "allows
methods defined in the actor behaviors to be invoked" and mediates all
traffic with the **Coordinator** through the actor's three ports:

* Invocation-port — incoming ``send``/``broadcast`` messages dispatch a
  method;
* Behavior-port — ``become`` routes the next behavior back to the actor;
* RPC-port — system calls with results (``create``, ``create-actorspace``,
  ``new-capability``) count one request/reply round trip each.

The interface keeps per-port traffic counters, so tests and experiment
E13 can verify the port discipline matches the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.actor import ActorContext, Behavior
from repro.core.errors import InterpreterRuntimeError
from repro.core.messages import Message

from .behavior_loader import BehaviorDef, BehaviorLibrary
from .env import Env
from .evaluator import Evaluator, base_env


@dataclass
class PortCounters:
    """Message counts through one interpreted actor's three ports."""

    invocation: int = 0
    behavior: int = 0
    rpc: int = 0

    def total(self) -> int:
        return self.invocation + self.behavior + self.rpc


class ActorInterface:
    """Effect bridge for one behavior invocation (implements EffectBridge)."""

    __slots__ = ("ctx", "library", "owner", "reply_to", "output")

    def __init__(self, ctx: ActorContext, library: BehaviorLibrary,
                 owner: "InterpretedBehavior", reply_to):
        self.ctx = ctx
        self.library = library
        self.owner = owner
        self.reply_to = reply_to
        self.output: list[str] = []

    # -- identity ----------------------------------------------------------------

    def self_address(self):
        return self.ctx.self_address

    def host_space(self):
        return self.ctx.host_space

    def reply_addr(self):
        if self.reply_to is None:
            raise InterpreterRuntimeError("no reply address on this message")
        return self.reply_to

    def now(self) -> float:
        return self.ctx.now

    # -- messaging ----------------------------------------------------------------

    def send_to(self, target, payload) -> None:
        self.ctx.send_to(target, payload, reply_to=self.ctx.self_address)

    def send_pattern(self, dest, payload, reply_to) -> None:
        if not isinstance(dest, str):
            raise InterpreterRuntimeError(f"send: destination must be text, got {dest!r}")
        self.ctx.send(dest, payload,
                      reply_to=reply_to if reply_to is not None else self.ctx.self_address)

    def broadcast_pattern(self, dest, payload, reply_to) -> None:
        if not isinstance(dest, str):
            raise InterpreterRuntimeError(f"broadcast: destination must be text, got {dest!r}")
        self.ctx.broadcast(dest, payload,
                           reply_to=reply_to if reply_to is not None else self.ctx.self_address)

    # -- lifecycle -------------------------------------------------------------------

    def become(self, name: str, args: list) -> None:
        definition = self.library.get(name)
        next_behavior = InterpretedBehavior(self.library, definition, args,
                                            engine=self.owner.engine)
        # The actor's identity persists across become: port counters and
        # print output carry over to the replacement behavior.
        next_behavior.ports = self.owner.ports
        next_behavior.output = self.owner.output
        self.owner.ports.behavior += 1  # next behavior travels the Behavior-port
        self.ctx.become(next_behavior)

    def create(self, name: str, args: list):
        definition = self.library.get(name)
        self.owner.ports.rpc += 1  # result (the new address) returns via RPC-port
        return self.ctx.create(
            InterpretedBehavior(self.library, definition, args,
                                engine=self.owner.engine))

    def create_actorspace(self, capability):
        self.owner.ports.rpc += 1
        return self.ctx.create_actorspace(capability)

    def make_visible(self, target, attrs, space, cap) -> None:
        self.ctx.make_visible(target, _as_attrs(attrs), space, cap)

    def make_invisible(self, target, space, cap) -> None:
        self.ctx.make_invisible(target, space, cap)

    def change_attributes(self, target, attrs, space, cap) -> None:
        self.ctx.change_attributes(target, _as_attrs(attrs), space, cap)

    def new_capability(self):
        self.owner.ports.rpc += 1
        return self.ctx.new_capability()

    def terminate(self) -> None:
        self.ctx.terminate()

    def schedule(self, delay, payload) -> None:
        if not isinstance(delay, (int, float)) or isinstance(delay, bool):
            raise InterpreterRuntimeError(f"schedule: delay must be a number, got {delay!r}")
        self.ctx.schedule(float(delay), payload)

    def emit(self, text: str) -> None:
        self.output.append(text)
        self.owner.output.append(text)


def _as_attrs(attrs):
    if isinstance(attrs, str):
        return attrs
    if isinstance(attrs, list) and all(isinstance(a, str) for a in attrs):
        return attrs
    raise InterpreterRuntimeError(
        f"attributes must be a string or list of strings, got {attrs!r}"
    )


class InterpretedBehavior(Behavior):
    """A :class:`~repro.core.actor.Behavior` whose code is a parsed script.

    The acquaintance parameters of the behavior definition are bound to
    ``args`` once; each incoming message ``[method, arg...]`` binds the
    method's communication parameters and evaluates its body.
    """

    def __init__(self, library: BehaviorLibrary, definition: BehaviorDef,
                 args: list, engine: str = "tree"):
        if len(args) != len(definition.params):
            raise InterpreterRuntimeError(
                f"behavior {definition.name} expects {len(definition.params)} "
                f"acquaintance parameters, got {len(args)}"
            )
        if engine not in ("tree", "bytecode"):
            raise ValueError(f"unknown engine {engine!r}: use 'tree' or 'bytecode'")
        self.library = library
        self.definition = definition
        #: "tree" = the §7.2 sequential interpreter; "bytecode" = the
        #: byte-compiled intermediary form §7 plans as future work.
        self.engine = engine
        self.state = dict(zip(definition.params, args))
        self.ports = PortCounters()
        #: Lines produced by (print ...) in this actor, in order.
        self.output: list[str] = []
        self.max_steps = 100_000

    def receive(self, ctx: ActorContext, message: Message) -> None:
        self.ports.invocation += 1  # arrived via the Invocation-port
        method_name, args = self._decode(message.payload)
        method = self.definition.method(method_name)
        if method is None:
            raise InterpreterRuntimeError(
                f"behavior {self.definition.name} has no method {method_name!r}"
            )
        if len(args) != len(method.params):
            raise InterpreterRuntimeError(
                f"{self.definition.name}.{method_name} expects {len(method.params)} "
                f"arguments, got {len(args)}"
            )
        interface = ActorInterface(ctx, self.library, self, message.reply_to)
        env = base_env().child(dict(self.state)).child(dict(zip(method.params, args)))
        if self.engine == "bytecode":
            from .vm import VM

            code = self.library.compiled(self.definition.name, method)
            VM(interface, max_steps=self.max_steps).run(code, env)
        else:
            evaluator = Evaluator(interface, max_steps=self.max_steps)
            evaluator.run_body(list(method.body), env)

    @staticmethod
    def _decode(payload) -> tuple[str, list]:
        """Accept ``[method, args...]`` lists/tuples or a bare method name."""
        if isinstance(payload, str):
            return payload, []
        if isinstance(payload, (list, tuple)) and payload and isinstance(payload[0], str):
            return payload[0], list(payload[1:])
        raise InterpreterRuntimeError(
            f"interpreted actors expect [method, args...] payloads, got {payload!r}"
        )

    def __repr__(self):
        return f"<InterpretedBehavior {self.definition.name}>"
