"""Parser: token stream to nested forms.

``parse_program`` returns the list of top-level forms; ``parse_one``
expects exactly one.  ``'x`` desugars to ``(quote x)``; the symbols
``true``/``false``/``nil`` become Python ``True``/``False``/``None`` at
parse time (they are constants, not bindables).
"""

from __future__ import annotations

from repro.core.errors import InterpreterSyntaxError

from .astnodes import Symbol
from .lexer import Token, tokenize

_CONSTANTS = {"true": True, "false": False, "nil": None}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def parse_form(self):
        if self.at_end():
            raise InterpreterSyntaxError("unexpected end of input")
        tok = self.next()
        if tok.kind == "(":
            items = []
            while True:
                if self.at_end():
                    raise InterpreterSyntaxError(
                        "unclosed '('", tok.line, tok.col
                    )
                if self.peek().kind == ")":
                    self.next()
                    return items
                items.append(self.parse_form())
        if tok.kind == ")":
            raise InterpreterSyntaxError("unexpected ')'", tok.line, tok.col)
        if tok.kind == "'":
            return [Symbol("quote"), self.parse_form()]
        if tok.kind in ("string", "number"):
            return tok.value
        assert tok.kind == "symbol"
        if tok.text in _CONSTANTS:
            return _CONSTANTS[tok.text]
        return Symbol(tok.text)


def parse_program(source: str) -> list:
    """Parse all top-level forms in ``source``."""
    parser = _Parser(tokenize(source))
    forms = []
    while not parser.at_end():
        forms.append(parser.parse_form())
    return forms


def parse_one(source: str):
    """Parse exactly one form; error on extra input."""
    forms = parse_program(source)
    if len(forms) != 1:
        raise InterpreterSyntaxError(
            f"expected exactly one form, found {len(forms)}"
        )
    return forms[0]
