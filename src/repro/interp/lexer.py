"""Tokenizer for the behavior-script language.

The prototype (paper section 7) interprets "the code associated with each
method definition" with "a small sequential interpreter", chosen over a
compiler for "the additional flexibility of easily loading behaviors at
run-time".  We use a compact s-expression syntax; the lexer produces a
flat token stream the parser folds into nested forms.

Token kinds: ``(``, ``)``, ``'`` (quote shorthand), strings (double
quoted, with escapes), numbers (int/float, with signs), and symbols
(everything else up to a delimiter).  ``;`` starts a comment to end of
line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import InterpreterSyntaxError

_DELIMS = frozenset("()' \t\n\r;")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str  #: "(", ")", "'", "string", "number", "symbol"
    text: str
    value: object  #: decoded payload for strings/numbers; text otherwise
    line: int
    col: int


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`InterpreterSyntaxError` on bad input."""
    tokens: list[Token] = []
    i, n = 0, len(source)
    line, col = 1, 1

    def advance(k: int = 1):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == ";":
            while i < n and source[i] != "\n":
                advance()
            continue
        if ch in "()'":
            tokens.append(Token(ch, ch, ch, line, col))
            advance()
            continue
        if ch == '"':
            start_line, start_col = line, col
            advance()
            chars: list[str] = []
            while i < n and source[i] != '"':
                c = source[i]
                if c == "\\":
                    advance()
                    if i >= n:
                        break
                    esc = source[i]
                    chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    advance()
                else:
                    chars.append(c)
                    advance()
            if i >= n:
                raise InterpreterSyntaxError("unterminated string", start_line, start_col)
            advance()  # closing quote
            tokens.append(Token("string", '"' + "".join(chars) + '"', "".join(chars),
                                start_line, start_col))
            continue
        # number or symbol
        start_line, start_col = line, col
        j = i
        while j < n and source[j] not in _DELIMS and source[j] != '"':
            j += 1
        text = source[i:j]
        advance(j - i)
        value = _maybe_number(text)
        if value is not None:
            tokens.append(Token("number", text, value, start_line, start_col))
        else:
            tokens.append(Token("symbol", text, text, start_line, start_col))
    return tokens


def _maybe_number(text: str) -> int | float | None:
    """Decode ``text`` as a number, or ``None`` if it is a symbol."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        # Reject symbols like "+" or "-" that float() also rejects, and
        # things like "1e" that it accepts oddly via exceptions anyway.
        return float(text)
    except ValueError:
        return None
