"""ShardRouter: which shard sequences which visibility operation.

The partition rules keep every ordering obligation §5 actually imposes
while splitting the rest:

* **Topology ops go to shard 0.**  ``ADD_SPACE`` / ``DESTROY_SPACE`` and
  every visibility op whose *target is a space* (the containment edges of
  the visibility DAG) are sequenced on shard 0, so the §5.7 acyclicity
  check — which walks only containment edges — sees one totally ordered
  edge set and decides identically at every replica.

* **Actor ops go to the containing space's home shard.**
  ``MAKE_VISIBLE`` / ``MAKE_INVISIBLE`` / ``CHANGE_ATTRIBUTES`` with an
  actor target mutate exactly one registry; §5 requires ordering only
  per-space, so the op is sequenced by the shard that owns that space.

* **Cross-cutting ops fan.**  ``BIND_CAPABILITY`` and ``PURGE`` touch
  state any shard's stream may depend on, so the submitter emits one copy
  per shard (``fan_of`` marks the copies); ``PURGE`` copies are *sliced*
  at apply time to registries homed on their own shard, preserving the
  invariant that a registry is mutated only by its home shard's stream or
  shard 0 — the soundness condition of the resolution cache's
  shard-vector tier.

A space's home shard is fixed at creation: hash of its root attribute
atom when it is created with attributes, else inherited from its parent
(path-prefix affinity — nested spaces co-locate), else hashed from its
address.  The choice is stamped into the ``ADD_SPACE`` args so every
replica records the same home shard.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.addresses import MailAddress, SpaceAddress, is_space_address
from repro.core.atoms import as_paths
from repro.runtime.bus import OpKind

from .map import ShardMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.visibility import Directory

#: Op kinds the submitter replicates once per shard stream.
FANNED_KINDS = frozenset({OpKind.BIND_CAPABILITY, OpKind.PURGE})

#: Op kinds pinned to the topology shard regardless of arguments.
TOPOLOGY_KINDS = frozenset({OpKind.ADD_SPACE, OpKind.DESTROY_SPACE})


class ShardRouter:
    """Maps visibility operations and spaces to their owning shard."""

    def __init__(self, shard_map: ShardMap):
        self.map = shard_map
        #: Origin-side shard hints for spaces whose ``ADD_SPACE`` has not
        #: applied locally yet (the creator knows the home shard the
        #: instant it mints the address; replicas learn it at apply time
        #: from the stamped op args).
        self.hints: dict[SpaceAddress, int] = {}

    def note_space(self, address: SpaceAddress, shard: int) -> None:
        self.hints[address] = shard

    def home_shard_for_new_space(
        self, address: SpaceAddress, attributes=None,
        parent: "SpaceAddress | None" = None,
        directory: "Directory | None" = None,
    ) -> int:
        """Decide (and remember) the home shard of a space being created."""
        root_atom = None
        if attributes is not None:
            paths = sorted(as_paths(attributes), key=str)
            if paths:
                root_atom = paths[0].atoms[0]
        parent_shard = None
        if root_atom is None and parent is not None:
            parent_shard = self.shard_of_space(parent, directory)
        shard = self.map.shard_for_space(
            root_atom=root_atom, parent_shard=parent_shard, address=address
        )
        self.note_space(address, shard)
        return shard

    def shard_of_space(
        self, address: SpaceAddress, directory: "Directory | None" = None
    ) -> int:
        """The home shard of ``address``: replica record, hint, or hash."""
        if directory is not None:
            rec = directory._spaces.get(address)  # tombstones keep their shard
            if rec is not None:
                return rec.shard
        hinted = self.hints.get(address)
        if hinted is not None:
            return hinted
        return self.map.shard_for_space(address=address)

    def shard_for_op(self, kind: OpKind, args: dict,
                     directory: "Directory | None" = None) -> int:
        """The shard that sequences one (non-fanned) op."""
        if kind in TOPOLOGY_KINDS:
            return 0
        target: MailAddress | None = args.get("target")
        if target is not None and is_space_address(target):
            return 0  # containment edge: totally ordered on the topology shard
        space = args.get("space")
        if space is not None:
            return self.shard_of_space(space, directory)
        return 0

    def is_fanned(self, kind: OpKind) -> bool:
        return kind in FANNED_KINDS

    def __repr__(self):
        return f"<ShardRouter shards={self.map.n_shards} hints={len(self.hints)}>"
