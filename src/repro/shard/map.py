"""The shard map: which shard owns a space, and which node runs it.

Two independent mappings live here:

* **space -> shard** (:meth:`ShardMap.owner_of` /
  :meth:`ShardMap.shard_for_space`): stable content hashing of the
  space's *root attribute atom* — ``crc32`` of the interned atom text,
  never Python's salted ``hash()``, so every process and every run
  agrees.  Spaces created without attributes inherit their parent's
  shard (path-prefix affinity) or fall back to hashing their address,
  which is likewise identical at every node.
* **shard -> sequencer node** (:meth:`sequencer_for` /
  :meth:`assign`): a versioned assignment table.  Rebalancing bumps
  ``version`` and is gossiped through the control plane; receivers
  apply strictly newer versions only, so a late duplicate can never
  roll an assignment back.
"""

from __future__ import annotations

import zlib
from typing import Iterable


class ShardMap:
    """Versioned shard -> sequencer-node assignment plus the space hash."""

    __slots__ = ("n_shards", "nodes", "version", "assignment", "_atom_shards")

    def __init__(self, n_shards: int = 1, nodes: "Iterable[int] | None" = None,
                 assignment: "dict[int, int] | None" = None, version: int = 0):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.nodes = list(nodes) if nodes is not None else [0]
        if assignment is not None:
            self.assignment = dict(assignment)
        else:
            # Default spread: shard k sequences at node k round-robin.
            self.assignment = {
                k: self.nodes[k % len(self.nodes)] for k in range(n_shards)
            }
        self.version = version
        #: Memo of atom -> shard.  Atoms are interned at parse time
        #: (``core.atoms.check_atom``), so the common case is a dict hit
        #: that short-circuits on pointer identity.
        self._atom_shards: dict[str, int] = {}

    # -- space -> shard -----------------------------------------------------

    def owner_of(self, atom: str) -> int:
        """The shard owning spaces rooted at ``atom`` (stable across runs)."""
        shard = self._atom_shards.get(atom)
        if shard is None:
            shard = zlib.crc32(atom.encode("utf-8")) % self.n_shards
            self._atom_shards[atom] = shard
        return shard

    def shard_for_space(self, root_atom: "str | None" = None,
                        parent_shard: "int | None" = None,
                        address=None) -> int:
        """Home shard for a new space.

        Precedence: root attribute atom (content affinity) > parent's
        shard (nested spaces co-locate) > stable hash of the address.
        """
        if root_atom is not None:
            return self.owner_of(root_atom)
        if parent_shard is not None:
            return parent_shard % self.n_shards
        if address is not None:
            return zlib.crc32(repr(address).encode("utf-8")) % self.n_shards
        return 0

    # -- shard -> node ------------------------------------------------------

    def sequencer_for(self, shard: int) -> int:
        return self.assignment[shard % self.n_shards]

    def assign(self, shard: int, node: int) -> int:
        """Move ``shard``'s sequencer role to ``node``; returns the new version."""
        if shard < 0 or shard >= self.n_shards:
            raise ValueError(f"no such shard: {shard}")
        self.assignment[shard] = node
        self.version += 1
        return self.version

    def apply_if_newer(self, manifest: dict) -> bool:
        """Adopt a gossiped assignment iff it is strictly newer."""
        if manifest.get("version", 0) <= self.version or \
                manifest.get("n_shards") != self.n_shards:
            return False
        self.assignment = {int(k): int(v)
                           for k, v in manifest["assignment"].items()}
        self.version = int(manifest["version"])
        return True

    # -- persistence (cluster.json manifest) --------------------------------

    def to_manifest(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "nodes": list(self.nodes),
            "version": self.version,
            "assignment": {str(k): v for k, v in self.assignment.items()},
        }

    @classmethod
    def from_manifest(cls, manifest: dict) -> "ShardMap":
        return cls(
            n_shards=int(manifest["n_shards"]),
            nodes=[int(n) for n in manifest.get("nodes", [0])],
            assignment={int(k): int(v)
                        for k, v in manifest.get("assignment", {}).items()},
            version=int(manifest.get("version", 0)),
        )

    def __repr__(self):
        return (f"<ShardMap {self.n_shards} shards v{self.version} "
                f"{self.assignment}>")
