"""Happens-before merge of per-shard persisted logs.

A sharded node persists each shard's sequenced ops into its own store
namespace (``<data-dir>/shard-K``).  There is no global sequence number
any more — that was the point — so offline tools (``repro replay``,
log audits, the rebalance drill's books) need a deterministic linear
extension of the per-shard partial orders.

The merge key is the **tick**: a node-local monotonic counter stamped
by the sequencing node at the moment an op receives its per-shard
sequence number, persisted alongside the op record.  Within one shard,
ticks are strictly increasing with ``seq`` (stamped under the same
counter), so sorting all shards' records by ``(tick, shard, seq)``:

* preserves every shard's internal total order (happens-before within
  a space), and
* interleaves shards in the order the sequencing side actually
  committed them — a valid linear extension of the cross-shard
  happens-before relation observed at that node, not an arbitrary one.

Records persisted before sharding existed carry no tick; they fall
back to ``tick == seq``, which is exact for a single shard.
"""

from __future__ import annotations

import os
import re
from typing import Any

_SHARD_DIR_RE = re.compile(r"^shard-(\d+)$")


def shard_dirs(data_dir: str) -> dict[int, str]:
    """Map shard id -> store namespace under ``data_dir``.

    A directory with no ``shard-K`` children is an unsharded (or
    single-shard) store and maps entirely to shard 0.
    """
    found: dict[int, str] = {}
    try:
        names = os.listdir(data_dir)
    except OSError:
        names = []
    for name in names:
        m = _SHARD_DIR_RE.match(name)
        if m:
            found[int(m.group(1))] = os.path.join(data_dir, name)
    return found or {0: data_dir}


def read_shard_records(shard_dir: str) -> list[tuple[int, int, Any]]:
    """``(seq, tick, op)`` records from one shard namespace, seq order."""
    from repro.store.node_store import segment_paths
    from repro.store.segment import ReadReport, scan_segment

    by_seq: dict[int, tuple[int, Any]] = {}
    for path in segment_paths(shard_dir):
        for rec in scan_segment(path, ReadReport()):
            if isinstance(rec, dict) and rec.get("rec") == "op":
                by_seq[rec["seq"]] = (rec.get("tick", rec["seq"]), rec["op"])
    return [(seq, tick, op) for seq, (tick, op) in sorted(by_seq.items())]


def merge_shard_logs(data_dir: str) -> list[tuple[int, int, int, Any]]:
    """Merge every shard namespace under ``data_dir`` into one order.

    Returns ``[(shard, seq, tick, op), ...]`` sorted by
    ``(tick, shard, seq)`` — a deterministic linear extension of the
    per-shard orders (see module docstring).
    """
    merged: list[tuple[int, int, int, Any]] = []
    for shard, shard_dir in sorted(shard_dirs(data_dir).items()):
        for seq, tick, op in read_shard_records(shard_dir):
            merged.append((shard, seq, tick, op))
    merged.sort(key=lambda r: (r[2], r[0], r[1]))
    return merged
