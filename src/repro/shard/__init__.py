"""Sharding the visibility plane: partitioned sequencing for actorSpaces.

The paper's coherence protocol (§7.3) totally orders *all* visibility
operations through one logical bus.  But §5 only ever needs ordering
*within* a space — "all actors in an actorSpace will observe two
broadcasts to that actorSpace in the same order"; nothing relates
operations on unrelated spaces.  This package exploits that slack:

* :class:`ShardMap` partitions actorSpaces across N shards by the hash
  of the space's root attribute atom (path-prefix affinity: nested
  spaces co-locate with their parent), and assigns each shard a
  sequencer node, versioned so assignments can move at runtime.
* :class:`ShardedBus` runs one :class:`~repro.runtime.bus.SequencerBus`
  per shard in the simulator, each with its own failover election and
  its own store namespace, plus a cross-shard sequencing journal that
  gives the conformance oracle a happens-before-consistent linear
  extension without re-introducing a global sequencer.
* :class:`ShardRouter` fronts pattern dispatch: literal first atoms pin
  an owning shard (sends can be forwarded to the shard's authority
  node); glob/regex first atoms that pin nothing fan out across all
  shard partitions and merge.
* :func:`merge_shard_logs` merges per-shard persisted logs into one
  happens-before order (node-local monotonic ticks) for offline replay.

Ordering contract under sharding (documented in TUTORIAL §17): ops on
the same space are totally ordered (one home shard per space); space
creation/destruction and space-in-space visibility (the containment
DAG) are totally ordered on shard 0, keeping §5.7 cycle checks
deterministic; ops on spaces homed on different shards are concurrent.
"""

from .bus import ShardedBus
from .map import ShardMap
from .merge import merge_shard_logs
from .router import ShardRouter

__all__ = ["ShardMap", "ShardedBus", "ShardRouter", "merge_shard_logs"]
