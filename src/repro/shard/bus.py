"""ShardedBus: N per-shard sequencers behind one bus-shaped facade.

The partitioned visibility plane runs one :class:`SequencerBus` per shard.
Each shard carries a gap-free sequence of its own; there is no global
sequence number.  Cross-shard order is reconstructed three ways:

* **online, per replica** — coordinators apply each shard's stream through
  its own hold-back cursor, parking ops whose containing space is not yet
  known (see ``Coordinator``); end states converge even though transient
  interleavings may differ between replicas;
* **online, for conformance** — a shared *journal* of ``(shard, seq)``
  pairs records the exact fan-out order at the sequencing node(s); when
  all shard sequencers are co-located (check mode) every replica observes
  precisely this order and the oracle replays it;
* **offline** — every sequenced op is stamped with a node-local monotonic
  *tick* from a shared counter, persisted with the op, and
  ``repro.shard.merge`` sorts by ``(tick, shard, seq)`` — a valid linear
  extension of all per-shard orders.

The facade exposes the same surface the system wires against a plain bus
(``submit``/``deliver``/``event_log``/``tracer``/failure notifications),
delegating to the owning shard.  ``op.shard`` is stamped by the submitting
coordinator before ``submit``; delivery callbacks receive per-shard
sequence numbers and recover the shard from ``op.shard``.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.runtime.bus import SequencerBus, VisibilityOp
from repro.runtime.clock import VirtualClock
from repro.runtime.events import EventQueue
from repro.runtime.transport import Transport

from .map import ShardMap


class ShardedBus:
    """One :class:`SequencerBus` per shard plus shared ordering metadata."""

    def __init__(
        self,
        nodes: list[int],
        events: EventQueue,
        clock: VirtualClock,
        transport: Transport,
        shard_map: ShardMap,
        sequencer_override: int | None = None,
        service_time: float = 0.0,
    ):
        self.nodes = list(nodes)
        self.events = events
        self.clock = clock
        self.transport = transport
        self.map = shard_map
        #: Cross-shard sequencing journal: (shard, per-shard seq) in the
        #: order ops were fanned out.  With co-located sequencers this is
        #: the exact order every replica applies, which is what the
        #: conformance oracle replays.
        self.journal: list[tuple[int, int]] = []
        self._tick_counter = itertools.count()
        self._deliver: Callable[[int, int, VisibilityOp], None] | None = None
        self._event_log = None
        self._tracer = None
        self.store = None  # per-shard stores live on the inner buses
        self.shards: dict[int, SequencerBus] = {}
        for k in range(shard_map.n_shards):
            seq_node = (
                sequencer_override
                if sequencer_override is not None
                else shard_map.sequencer_for(k)
            )
            inner = SequencerBus(
                nodes, events, clock, transport,
                sequencer_node=seq_node, service_time=service_time,
            )
            inner.shard_id = k
            inner.journal = self.journal
            inner.tick_counter = self._tick_counter
            self.shards[k] = inner

    # -- wiring (propagated to every shard) --------------------------------------

    @property
    def deliver(self):
        return self._deliver

    @deliver.setter
    def deliver(self, fn) -> None:
        self._deliver = fn
        for inner in self.shards.values():
            inner.deliver = fn

    @property
    def event_log(self):
        return self._event_log

    @event_log.setter
    def event_log(self, log) -> None:
        self._event_log = log
        for inner in self.shards.values():
            inner.event_log = log

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        for inner in self.shards.values():
            inner.tracer = tracer

    def attach_store(self, make_store) -> None:
        """Attach one store per shard.

        ``make_store`` is a callable ``shard -> NodeStore`` so the caller
        chooses the on-disk layout (``data_dir/shard-K`` by convention —
        ``repro.shard.merge.shard_dirs`` discovers it).
        """
        for k, inner in self.shards.items():
            inner.store = make_store(k)

    # -- bus surface -------------------------------------------------------------

    def submit(self, op: VisibilityOp) -> None:
        """Route ``op`` to its home shard's sequencer (``op.shard``)."""
        self.shards[op.shard].submit(op)

    def live_nodes(self) -> list[int]:
        return [n for n in self.nodes if not self.transport.node_is_down(n)]

    def on_node_down(self, node: int) -> None:
        for inner in self.shards.values():
            inner.on_node_down(node)

    def on_node_recovered(self, node: int) -> None:
        for inner in self.shards.values():
            inner.on_node_recovered(node)

    def replay_to(self, node: int, cursors: dict[int, int]) -> int:
        """State transfer for a recovering replica, one shard at a time.

        ``cursors`` maps shard -> first per-shard sequence number the
        replica has *not* applied.  Each shard replays independently from
        its own log (or its own store namespace when no live replica can
        source the transfer) — a corrupted shard store never blocks
        recovery of the others.
        """
        total = 0
        for k, inner in self.shards.items():
            total += inner.replay_to(node, cursors.get(k, 0))
        return total

    def rebalance(self, shard: int, node: int) -> int:
        """Move ``shard``'s sequencer role to ``node``, live.

        Sequencing state is modelled as shared bus state (a real
        deployment rebuilds it from the replicated per-shard log during
        handoff), so the new sequencer continues the gap-free per-shard
        order; unacked submissions are re-driven immediately.  Returns the
        new shard-map version.
        """
        inner = self.shards[shard]
        inner.sequencer_node = node
        inner._schedule_redrive(0.0)
        return self.map.assign(shard, node)

    # -- aggregate accounting ----------------------------------------------------

    @property
    def protocol_messages(self) -> int:
        return sum(b.protocol_messages for b in self.shards.values())

    @property
    def ops_sequenced(self) -> int:
        return sum(b.ops_sequenced for b in self.shards.values())

    @property
    def failovers(self) -> int:
        return sum(b.failovers for b in self.shards.values())

    @property
    def disk_replays(self) -> int:
        return sum(b.disk_replays for b in self.shards.values())

    def sequencer_nodes(self) -> dict[int, int]:
        """shard -> node currently holding that shard's sequencer role."""
        return {k: b.sequencer_node for k, b in self.shards.items()}

    def __repr__(self):
        seats = ",".join(
            f"{k}@n{b.sequencer_node}" for k, b in sorted(self.shards.items())
        )
        return f"<ShardedBus {seats}>"
