"""Epoch-stamped snapshots with atomic rename installation.

A snapshot file holds exactly one framed record (same ``length | crc |
codec payload`` frame as log segments) whose payload is the snapshot
state dict.  The filename carries the epoch: ``snapshot-<applied_seq
zero-padded to 20>.snap``, so the latest snapshot sorts last
lexicographically and its seq is readable without opening the file.

Installation is crash-safe: write to ``<name>.tmp``, fsync the file,
``os.rename`` into place (atomic on POSIX), fsync the directory.  A
crash at any point leaves either the previous snapshot or both — never
a half-written current one.  Loading walks candidates newest-first and
falls back past any that fail their CRC.
"""

from __future__ import annotations

import os
import re
from typing import Any

from .segment import ReadReport, fsync_dir, pack_record, scan_segment

_SNAP_RE = re.compile(r"^snapshot-(\d{20})\.snap$")


def snapshot_path(data_dir: str, applied_seq: int) -> str:
    return os.path.join(data_dir, f"snapshot-{applied_seq:020d}.snap")


def write_snapshot(data_dir: str, applied_seq: int, state: dict) -> str:
    """Atomically install a snapshot of ``state`` at ``applied_seq``."""
    final = snapshot_path(data_dir, applied_seq)
    tmp = final + ".tmp"
    record = pack_record(state)
    with open(tmp, "wb") as fh:
        fh.write(record)
        fh.flush()
        os.fsync(fh.fileno())
    os.rename(tmp, final)
    fsync_dir(data_dir)
    return final


def list_snapshots(data_dir: str) -> list[tuple[int, str]]:
    """All installed snapshots as (applied_seq, path), oldest first."""
    out = []
    try:
        names = os.listdir(data_dir)
    except OSError:
        return []
    for name in names:
        m = _SNAP_RE.match(name)
        if m:
            out.append((int(m.group(1)), os.path.join(data_dir, name)))
    out.sort()
    return out


def load_latest_snapshot(data_dir: str,
                         report: ReadReport | None = None,
                         ) -> tuple[int, Any] | None:
    """Newest snapshot that passes its checksum, or None.

    Corrupt candidates are tallied into ``report`` and skipped — an
    older intact snapshot still recovers the node (the log suffix replay
    just gets longer).
    """
    if report is None:
        report = ReadReport()
    for applied_seq, path in reversed(list_snapshots(data_dir)):
        records = list(scan_segment(path, report))
        if len(records) == 1:
            return applied_seq, records[0]
        report.corrupt_segments.append(os.path.basename(path))
    return None


def prune_snapshots(data_dir: str, keep: int = 2) -> list[str]:
    """Delete all but the newest ``keep`` snapshots; returns removed paths."""
    removed = []
    snaps = list_snapshots(data_dir)
    for _seq, path in snaps[:-keep] if keep else snaps:
        try:
            os.remove(path)
            removed.append(path)
        except OSError:
            pass
    if removed:
        fsync_dir(data_dir)
    return removed
