"""``python -m repro replay`` — deterministic time travel over a persisted log.

The replayer re-drives a data directory's snapshot + op suffix through
the same per-kind application logic the live coordinator uses, but with
all nondeterminism removed: virtual "now" is the op's sequence number,
there is no scheduler, no RNG, no wall clock.  Replaying the same bytes
therefore always lands on the same state — the determinism test asserts
the canonical export is byte-identical across runs — which is what makes
the log a *repro artifact*: any state a cluster reached can be rebuilt,
inspected at any ``--until`` point, and diffed between two points.

Outputs:

* summary line + state digest (always)
* ``--state-out``  canonical directory export (deterministic JSON)
* ``--events-out`` the replay event stream as JSONL
* ``--trace-out``  Chrome trace via the flight recorder's exporter
* ``--diff A:B``   directory difference between two sequence points
* ``--check``      validate the log against the §5 reference model
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Any

from ..core.actorspace import SpaceRecord
from ..core.errors import ActorSpaceError
from ..core.manager import default_manager
from ..core.visibility import Directory
from ..net.codec import encode_value
from ..runtime.bus import OpKind, VisibilityOp
from ..runtime.eventlog import EventLog, export_chrome_trace
from .node_store import RecoveredState, load_data_dir
from .recovery import _restore_directory


class LogReplayer:
    """Applies persisted visibility ops to a standalone directory replica.

    Mirrors ``Coordinator._apply_op`` per-kind semantics exactly, minus
    everything tied to a live system (tracer, parked messages, origin
    callbacks).  ``created_at``/``now`` timestamps are the op's sequence
    number, so replay output is a pure function of the log bytes.
    """

    def __init__(self) -> None:
        self.directory = Directory()
        self.managers: dict[Any, Any] = {}
        self.applied_seqs: list[int] = []
        self.rejected: list[tuple[int, str]] = []
        self.next_seq = 0
        # The bootstrap root space is seeded directly into every replica
        # at system construction — it never crosses the bus, so a replay
        # from genesis must mint it the same way (snapshot restores
        # tolerate the duplicate).
        from ..core.addresses import SpaceAddress

        root = SpaceAddress(0, 0)
        self.directory.add_space(SpaceRecord(root, None, 0, created_at=0.0))
        self.managers[root] = default_manager()

    def restore(self, state: dict) -> None:
        """Start from a snapshot instead of an empty world."""
        _restore_directory(self, state)
        self.next_seq = state.get("applied_seq", 0)

    def apply(self, seq: int, op: VisibilityOp) -> tuple[bool, str | None]:
        """Apply one op; returns (applied, rejection reason)."""
        self.next_seq = seq + 1
        now = float(seq)
        try:
            kind, a = op.kind, op.args
            if kind is OpKind.ADD_SPACE:
                record = SpaceRecord(
                    a["address"], a.get("capability"),
                    a.get("node", op.origin_node), created_at=now,
                )
                self.directory.add_space(record)
                self.managers[a["address"]] = a.get(
                    "manager_factory", default_manager)()
            elif kind is OpKind.DESTROY_SPACE:
                self.directory.destroy_space(a["address"])
                self.managers.pop(a["address"], None)
            elif kind is OpKind.MAKE_VISIBLE:
                manager = self.managers.get(a["space"]) or default_manager()
                self.directory.make_visible(
                    a["target"], a["attributes"], a["space"],
                    a.get("capability"), now=now,
                    check_cycles=manager.check_cycles,
                )
            elif kind is OpKind.MAKE_INVISIBLE:
                self.directory.make_invisible(
                    a["target"], a["space"], a.get("capability"))
            elif kind is OpKind.CHANGE_ATTRIBUTES:
                self.directory.change_attributes(
                    a["target"], a["attributes"], a["space"],
                    a.get("capability"), now=now,
                )
            elif kind is OpKind.BIND_CAPABILITY:
                self.directory.bind_capability(a["target"], a.get("capability"))
            elif kind is OpKind.PURGE:
                self.directory.purge_target(a["target"])
            else:
                raise AssertionError(f"unknown op kind {kind}")
        except ActorSpaceError as exc:
            self.rejected.append((seq, type(exc).__name__))
            return False, type(exc).__name__
        self.applied_seqs.append(seq)
        return True, None


def canonical_state(directory: Directory) -> dict:
    """The directory as a sorted, JSON-able dict (deterministic)."""
    out = {}
    for addr, registry in sorted(directory.snapshot().items(), key=repr):
        out[repr(addr)] = {
            repr(target): sorted(str(p) for p in attrs)
            for target, attrs in sorted(registry.items(), key=repr)
        }
    return out


def state_digest(directory: Directory) -> str:
    """sha256 over the canonical codec encoding of the directory."""
    payload = {}
    for addr, registry in sorted(directory.snapshot().items(), key=repr):
        payload[addr] = {t: registry[t] for t in sorted(registry, key=repr)}
    return hashlib.sha256(encode_value(payload)).hexdigest()


def replay_recovered(recovered: RecoveredState, until: int | None = None,
                     event_log: EventLog | None = None,
                     ) -> tuple[LogReplayer, dict]:
    """Drive a :class:`RecoveredState` through a fresh replayer.

    Ops are applied strictly contiguously from the snapshot boundary; a
    sequence gap (only possible after corruption salvage) stops the
    replay honestly rather than applying out of order.
    """
    replayer = LogReplayer()
    if recovered.snapshot is not None:
        replayer.restore(recovered.snapshot)
    start = replayer.next_seq
    stopped_at_gap = None
    expected = start
    for seq in sorted(s for s in recovered.ops if s >= start):
        if until is not None and seq > until:
            break
        if seq != expected:
            stopped_at_gap = (expected, seq)
            break
        op = recovered.ops[seq]
        applied, reason = replayer.apply(seq, op)
        expected = seq + 1
        if event_log is not None:
            event_log.emit(
                "replay_apply" if applied else "replay_reject",
                float(seq), op.origin_node,
                op_seq=seq, op_kind=op.kind.value,
                origin_seq=op.origin_seq,
                **({"reason": reason} if reason else {}),
            )
    summary = {
        "snapshot_seq": recovered.snapshot_seq,
        "start_seq": start,
        "last_seq": expected - 1,
        "ops_applied": len(replayer.applied_seqs),
        "ops_rejected": len(replayer.rejected),
        "records_dropped": recovered.report.records_dropped,
        "corrupt_segments": list(recovered.report.corrupt_segments),
        "gap": list(stopped_at_gap) if stopped_at_gap else None,
        "digest": state_digest(replayer.directory),
    }
    return replayer, summary


def _diff_states(a: dict, b: dict) -> list[str]:
    lines = []
    for space in sorted(set(a) | set(b)):
        ra, rb = a.get(space), b.get(space)
        if ra is None:
            lines.append(f"+ space {space} ({len(rb)} entries)")
            continue
        if rb is None:
            lines.append(f"- space {space} ({len(ra)} entries)")
            continue
        for target in sorted(set(ra) | set(rb)):
            ta, tb = ra.get(target), rb.get(target)
            if ta == tb:
                continue
            if ta is None:
                lines.append(f"+ {space} :: {target} {tb}")
            elif tb is None:
                lines.append(f"- {space} :: {target} {ta}")
            else:
                lines.append(f"~ {space} :: {target} {ta} -> {tb}")
    return lines


def replay_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro replay",
        description="Deterministically re-drive a persisted node log.")
    parser.add_argument("data_dir", help="node data directory (--data-dir of serve)")
    parser.add_argument("--until", type=int, default=None, metavar="SEQ",
                        help="stop after applying op SEQ")
    parser.add_argument("--diff", metavar="A:B", default=None,
                        help="show directory difference between seq A and seq B")
    parser.add_argument("--state-out", metavar="FILE", default=None,
                        help="write canonical directory export (deterministic JSON)")
    parser.add_argument("--events-out", metavar="FILE", default=None,
                        help="write replay event stream as JSONL")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="export a Chrome trace of the replay")
    parser.add_argument("--check", action="store_true",
                        help="validate the log against the §5 reference model")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    recovered = load_data_dir(args.data_dir)
    if recovered.empty:
        print(f"replay: nothing recoverable under {args.data_dir}",
              file=sys.stderr)
        return 2

    event_log = EventLog(capacity=1 << 20, enabled=True)
    replayer, summary = replay_recovered(recovered, until=args.until,
                                         event_log=event_log)

    if not args.quiet:
        snap = (f"snapshot@{summary['snapshot_seq']}"
                if summary["snapshot_seq"] >= 0 else "no snapshot")
        suffix = (f"ops [{summary['start_seq']}, {summary['last_seq']}]"
                  if summary["last_seq"] >= summary["start_seq"]
                  else "empty op suffix")
        print(f"replay: {snap} + {suffix} -> "
              f"applied={summary['ops_applied']} "
              f"rejected={summary['ops_rejected']}")
        if summary["corrupt_segments"]:
            print(f"replay: salvage dropped {summary['records_dropped']} "
                  f"record(s) across {len(summary['corrupt_segments'])} "
                  f"corrupt segment(s)")
        if summary["gap"]:
            print(f"replay: stopped at sequence gap (expected "
                  f"{summary['gap'][0]}, next persisted {summary['gap'][1]})")
        print(f"replay: state digest {summary['digest']}")

    if args.state_out:
        export = {"summary": summary,
                  "directory": canonical_state(replayer.directory)}
        with open(args.state_out, "w", encoding="utf-8") as fh:
            json.dump(export, fh, sort_keys=True, indent=1)
            fh.write("\n")
    if args.events_out:
        with open(args.events_out, "w", encoding="utf-8") as fh:
            for event in event_log:
                fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
    if args.trace_out:
        export_chrome_trace(list(event_log), args.trace_out)
        if not args.quiet:
            print(f"replay: Chrome trace -> {args.trace_out}")

    if args.diff:
        a_text, sep, b_text = args.diff.partition(":")
        if not sep:
            print("replay: --diff wants A:B sequence numbers", file=sys.stderr)
            return 2
        try:
            seq_a, seq_b = int(a_text), int(b_text)
        except ValueError:
            print(f"replay: bad --diff spec {args.diff!r}", file=sys.stderr)
            return 2
        rep_a, _ = replay_recovered(recovered, until=seq_a)
        rep_b, _ = replay_recovered(recovered, until=seq_b)
        lines = _diff_states(canonical_state(rep_a.directory),
                             canonical_state(rep_b.directory))
        print(f"diff @{seq_a} -> @{seq_b}: "
              f"{len(lines) or 'no'} change(s)")
        for line in lines:
            print(f"  {line}")

    if args.check:
        from ..check.logcheck import check_recovered

        problems = check_recovered(recovered, until=args.until)
        if problems:
            for problem in problems[:20]:
                print(f"check: {problem}", file=sys.stderr)
            print(f"check: FAILED with {len(problems)} problem(s)",
                  file=sys.stderr)
            return 1
        if not args.quiet:
            print("check: log conforms to the §5 reference model")
    return 0
