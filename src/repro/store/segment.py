"""Append-only record segments: framing, group-commit writes, salvage reads.

A segment file is a sequence of records, each::

    u32 length (little-endian) | u32 crc32(payload) | payload bytes

``payload`` is one :func:`repro.net.codec.encode_value` value.  There is
no file header: an empty file is a valid (empty) segment, and the record
frame is self-describing enough to salvage.  The CRC covers only the
payload — a record is accepted iff its length fits inside the file, the
checksum matches, and the payload decodes as exactly one codec value.

Readers never raise on corrupt bytes.  On the first record that fails
any of those checks the scan of that segment stops: everything before it
is the longest valid prefix, everything after it is untrusted and
reported (``records_dropped`` / ``bytes_dropped``).  We deliberately do
not resynchronise past a bad record — skipping ahead could replay stale
bytes from a recycled region as fresh records, which is a silent
reorder.  A torn tail costs at most the uncommitted suffix.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..net.codec import WireError, decode_value, encode_value

_HEADER = struct.Struct("<II")
HEADER_BYTES = _HEADER.size

# Cap on a single record's payload, mirroring the wire frame cap: a
# corrupt length prefix must not make the reader trust a multi-gigabyte
# "record" that swallows the rest of the file.
MAX_RECORD_BYTES = 8 * 1024 * 1024


def pack_record(value: Any) -> bytes:
    """Frame one codec-encodable value as a record."""
    payload = encode_value(value)
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError(f"record payload {len(payload)} bytes exceeds cap")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class ReadReport:
    """Honest account of one salvage scan over a set of segments."""

    records: int = 0
    records_dropped: int = 0
    bytes_dropped: int = 0
    corrupt_segments: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt_segments

    def to_dict(self) -> dict:
        return {
            "records": self.records,
            "records_dropped": self.records_dropped,
            "bytes_dropped": self.bytes_dropped,
            "corrupt_segments": list(self.corrupt_segments),
        }


def _count_plausible_tail(data: bytes, offset: int) -> int:
    """Walk length prefixes past a corruption point, counting records we
    are abandoning.  Count-only: nothing here is decoded or trusted; it
    exists so ``records_dropped`` reads as "about N records lost", not
    just "some bytes lost".  The walk stops as soon as a length prefix
    stops being plausible, after which the remainder counts as one
    unstructured drop if non-empty."""
    dropped = 0
    pos = offset
    end = len(data)
    while pos + HEADER_BYTES <= end:
        length, _crc = _HEADER.unpack_from(data, pos)
        if length > MAX_RECORD_BYTES or pos + HEADER_BYTES + length > end:
            break
        dropped += 1
        pos = pos + HEADER_BYTES + length
    if pos < end:
        dropped += 1
    return dropped


def scan_segment(path: str, report: ReadReport) -> Iterator[Any]:
    """Yield the longest valid prefix of decoded records in ``path``.

    Corruption (bad CRC, impossible length, undecodable payload, torn
    tail) stops the scan and is tallied into ``report`` — never raised.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        report.corrupt_segments.append(os.path.basename(path))
        return
    pos = 0
    end = len(data)
    while pos < end:
        if pos + HEADER_BYTES > end:
            break  # torn header
        length, crc = _HEADER.unpack_from(data, pos)
        if length > MAX_RECORD_BYTES or pos + HEADER_BYTES + length > end:
            break  # impossible or torn length
        payload = data[pos + HEADER_BYTES : pos + HEADER_BYTES + length]
        if zlib.crc32(payload) != crc:
            break
        try:
            value = decode_value(payload)
        except WireError:
            break
        report.records += 1
        yield value
        pos += HEADER_BYTES + length
    if pos < end:
        report.corrupt_segments.append(os.path.basename(path))
        report.bytes_dropped += end - pos
        report.records_dropped += _count_plausible_tail(data, pos)


def scan_segments(paths: list[str], report: ReadReport | None = None,
                  ) -> tuple[list[Any], ReadReport]:
    """Scan segments in the given order, salvaging each independently."""
    if report is None:
        report = ReadReport()
    records: list[Any] = []
    for path in paths:
        records.extend(scan_segment(path, report))
    return records, report


class SegmentWriter:
    """Buffered appender for one segment file with group-commit fsync.

    ``append`` only stages bytes; ``commit`` writes the whole batch with
    one ``write()`` and, under ``fsync="commit"``, one ``fsync()``.
    Callers that batch several appends per commit get group commit for
    free — this is the "fsync-on-commit batching" in the package
    contract.
    """

    def __init__(self, path: str, fsync: str = "commit"):
        if fsync not in ("commit", "batch", "never"):
            raise ValueError(f"unknown fsync policy: {fsync!r}")
        self.path = path
        self.fsync = fsync
        self._fh = open(path, "ab")
        self._pending: list[bytes] = []
        self.size = self._fh.tell()
        self.records_written = 0
        self.commits = 0
        self.fsyncs = 0

    def append(self, value: Any) -> int:
        """Stage one record; returns its framed size in bytes."""
        record = pack_record(value)
        self._pending.append(record)
        return len(record)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def commit(self, force_sync: bool = False) -> int:
        """Flush staged records to disk; returns records committed."""
        n = len(self._pending)
        if n:
            blob = b"".join(self._pending)
            self._pending.clear()
            self._fh.write(blob)
            self.size += len(blob)
            self.records_written += n
            self.commits += 1
        if n or force_sync:
            self._fh.flush()
            if self.fsync == "commit" or force_sync:
                os.fsync(self._fh.fileno())
                self.fsyncs += 1
        return n

    def sync(self) -> None:
        """Force an fsync regardless of policy (used by batch timers)."""
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.fsyncs += 1

    def close(self) -> None:
        if self._fh.closed:
            return
        self.commit(force_sync=self.fsync != "never")
        self._fh.close()


def fsync_dir(path: str) -> None:
    """fsync a directory so renames/creates in it are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
