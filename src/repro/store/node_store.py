"""The per-node durable store: op log + DLQ journal + snapshots.

``NodeStore`` owns one data directory (see the package docstring for
layout) and exposes the transactional-outbox write path the buses and
the dead-letter queue hook into:

* ``append_op(seq, op)`` / ``commit()`` — persist a sequenced visibility
  op.  The bus calls commit *before* delivering the op locally, so an op
  a recovered node replays was durable before it ever applied.
* ``append_dlq_*`` — journal dead-letter lifecycle events (capture,
  retry, resolve, expire).  Each carries a monotonically increasing
  event number ``n``; snapshots record the highest ``n`` folded in, so
  recovery applies only the journal suffix and a letter never
  double-adopts.
* ``write_snapshot(applied_seq, state)`` — install a snapshot, rotate
  the live segment, and truncate closed segments made redundant by it.

Record shapes on disk (all values closed-world codec-encodable)::

    {"rec": "op",  "seq": int, "op": VisibilityOp}
    {"rec": "dlq", "n": int, "kind": "capture"|"retry",
     "envelope": Envelope, "dst": int, "reason": str,
     "attempts": int, "queued_at": float}
    {"rec": "dlq", "n": int, "kind": "resolve", "id": int}
    {"rec": "dlq", "n": int, "kind": "expire",  "id": int,
     "reason": str, "attempts": int}
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from typing import Any

from .segment import ReadReport, SegmentWriter, fsync_dir, scan_segment
from .snapshot import (
    list_snapshots,
    load_latest_snapshot,
    prune_snapshots,
    write_snapshot,
)

_SEG_RE = re.compile(r"^seg-(\d{8})\.log$")

#: Rotate the live segment once it grows past this many bytes (also
#: rotated unconditionally at snapshot time, so truncation has a clean
#: pre-snapshot/post-snapshot boundary).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


def segment_paths(data_dir: str) -> list[str]:
    """Segment files in a data directory, oldest first."""
    log_dir = os.path.join(data_dir, "log")
    try:
        names = sorted(n for n in os.listdir(log_dir) if _SEG_RE.match(n))
    except OSError:
        return []
    return [os.path.join(log_dir, n) for n in names]


def load_data_dir(data_dir: str) -> "RecoveredState":
    """Read-only salvage of a data directory (no writer is opened).

    Used by ``NodeStore.load`` at startup and by the offline replay
    debugger, which must never mutate the directory it inspects.
    """
    out = RecoveredState()
    snap = load_latest_snapshot(data_dir, out.report)
    dlq_floor = 0
    if snap is not None:
        out.snapshot_seq, out.snapshot = snap
        dlq_floor = out.snapshot.get("dlq_event_seq", 0)
    events: dict[int, dict] = {}
    for path in segment_paths(data_dir):
        for rec in scan_segment(path, out.report):
            if not isinstance(rec, dict):
                continue
            if rec.get("rec") == "op":
                out.ops[rec["seq"]] = rec["op"]
            elif rec.get("rec") == "dlq" and rec["n"] > dlq_floor:
                events[rec["n"]] = rec
    out.dlq_events = [events[n] for n in sorted(events)]
    return out


def read_ops_from_dir(data_dir: str, from_seq: int = 0) -> list[tuple[int, Any]]:
    """Persisted ops with seq >= from_seq from a data directory."""
    ops: dict[int, Any] = {}
    for path in segment_paths(data_dir):
        report = ReadReport()
        for rec in scan_segment(path, report):
            if isinstance(rec, dict) and rec.get("rec") == "op" \
                    and rec["seq"] >= from_seq:
                ops[rec["seq"]] = rec["op"]
    return sorted(ops.items())


@dataclass
class RecoveredState:
    """Everything ``NodeStore.load`` salvages from disk."""

    snapshot_seq: int = -1            # applied_seq of the snapshot, -1 if none
    snapshot: dict | None = None
    ops: dict[int, Any] = field(default_factory=dict)     # seq -> VisibilityOp
    dlq_events: list[dict] = field(default_factory=list)  # journal suffix, by n
    report: ReadReport = field(default_factory=ReadReport)

    @property
    def max_seq(self) -> int:
        """Highest persisted op seq (committed-durable watermark)."""
        return max(self.ops, default=self.snapshot_seq)

    @property
    def empty(self) -> bool:
        return self.snapshot is None and not self.ops and not self.dlq_events


class NodeStore:
    """Append-only durable store for one node's data directory."""

    def __init__(self, data_dir: str, *, fsync: str = "commit",
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 batch_interval: float = 0.05):
        self.data_dir = data_dir
        self.log_dir = os.path.join(data_dir, "log")
        os.makedirs(self.log_dir, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.batch_interval = batch_interval
        self._last_sync = time.monotonic()
        # DLQ journal bookkeeping: monotone event counter, plus the set
        # of envelope ids currently persisted as captured.  resolve/
        # expire records are written only for ids in this set —
        # note_delivered fires on *every* mailbox landing, and without
        # the guard ordinary traffic would write-amplify the journal.
        self._dlq_seq = 0
        self._dlq_pending: set[int] = set()
        # metrics
        self.ops_appended = 0
        self.dlq_appended = 0
        self.commits = 0
        self.bytes_written = 0
        self.snapshots_written = 0
        self.segments_truncated = 0
        self._closed_segments: list[tuple[str, int]] = []  # (path, max_op_seq)
        self._writer: SegmentWriter | None = None
        self._live_max_op_seq = -1
        self._scan_existing_segments()
        self._open_segment(next_index=self._next_segment_index)

    # -- segment lifecycle ---------------------------------------------------

    def _scan_existing_segments(self) -> None:
        """Index pre-existing segments (recovery path) as closed history."""
        self._next_segment_index = 1
        for name in sorted(os.listdir(self.log_dir)):
            m = _SEG_RE.match(name)
            if not m:
                continue
            self._next_segment_index = int(m.group(1)) + 1
            path = os.path.join(self.log_dir, name)
            report = ReadReport()
            max_seq = -1
            for rec in scan_segment(path, report):
                if isinstance(rec, dict) and rec.get("rec") == "op":
                    max_seq = max(max_seq, rec["seq"])
                elif isinstance(rec, dict) and rec.get("rec") == "dlq":
                    self._dlq_seq = max(self._dlq_seq, rec["n"])
            self._closed_segments.append((path, max_seq))

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.log_dir, f"seg-{index:08d}.log")

    def _open_segment(self, next_index: int) -> None:
        self._writer = SegmentWriter(self._segment_path(next_index),
                                     fsync=self.fsync)
        self._next_segment_index = next_index + 1
        self._live_max_op_seq = -1
        fsync_dir(self.log_dir)

    def _rotate(self) -> None:
        writer = self._writer
        writer.close()
        self._closed_segments.append((writer.path, self._live_max_op_seq))
        self._open_segment(self._next_segment_index)

    # -- write path ----------------------------------------------------------

    def append_op(self, seq: int, op: Any, tick: "int | None" = None) -> None:
        record: dict[str, Any] = {"rec": "op", "seq": seq, "op": op}
        if tick is not None:
            # Node-local monotonic sequencing tick: the merge key for
            # cross-shard happens-before ordering (see repro.shard.merge).
            record["tick"] = tick
        self._writer.append(record)
        self._live_max_op_seq = max(self._live_max_op_seq, seq)
        self.ops_appended += 1

    def _append_dlq(self, record: dict) -> None:
        self._dlq_seq += 1
        record["rec"] = "dlq"
        record["n"] = self._dlq_seq
        self._writer.append(record)
        self.dlq_appended += 1

    def append_dlq_capture(self, envelope: Any, dst: int, reason: str,
                           attempts: int, queued_at: float) -> None:
        """Journal a (re-)capture.  A capture of an id already pending is
        recorded as a ``retry`` — an update to the existing letter, not a
        new one — so recovery's queued_total accounting stays honest."""
        retry = envelope.envelope_id in self._dlq_pending
        self._append_dlq({
            "kind": "retry" if retry else "capture",
            "envelope": envelope, "dst": dst, "reason": reason,
            "attempts": attempts, "queued_at": queued_at,
        })
        self._dlq_pending.add(envelope.envelope_id)

    def append_dlq_resolve(self, envelope_id: int) -> bool:
        """Journal a delivery for a persisted letter; False if unknown."""
        if envelope_id not in self._dlq_pending:
            return False
        self._dlq_pending.discard(envelope_id)
        self._append_dlq({"kind": "resolve", "id": envelope_id})
        return True

    def append_dlq_expire(self, envelope_id: int, reason: str,
                          attempts: int) -> bool:
        if envelope_id not in self._dlq_pending:
            return False
        self._dlq_pending.discard(envelope_id)
        self._append_dlq({"kind": "expire", "id": envelope_id,
                          "reason": reason, "attempts": attempts})
        return True

    def adopt_pending(self, envelope_ids) -> None:
        """Seed the pending-letter guard after recovery re-adoption."""
        self._dlq_pending.update(envelope_ids)

    def commit(self) -> int:
        """Make all staged appends durable per the fsync policy."""
        writer = self._writer
        before = writer.size
        n = writer.commit()
        self.bytes_written += writer.size - before
        if n:
            self.commits += 1
            if self.fsync == "batch":
                now = time.monotonic()
                if now - self._last_sync >= self.batch_interval:
                    writer.sync()
                    self._last_sync = now
        if writer.size >= self.segment_bytes:
            self._rotate()
        return n

    # -- snapshots + truncation ----------------------------------------------

    def write_snapshot(self, applied_seq: int, state: dict) -> str:
        """Install a snapshot and truncate segments it supersedes.

        The live segment is rotated first, so every closed segment
        predates the snapshot; a closed segment is deleted when its
        highest op seq is below the *oldest retained* snapshot's seq —
        not this one's.  We keep two snapshots so that recovery can fall
        back past a corrupt newest one, and that fallback needs the log
        suffix between the two snapshots to still exist.  (A deleted
        segment's DLQ records are superseded too — every retained
        snapshot embeds full pending-letter state and the journal
        high-water mark.)
        """
        state = dict(state)
        state["dlq_event_seq"] = self._dlq_seq
        path = write_snapshot(self.data_dir, applied_seq, state)
        self.snapshots_written += 1
        if self._writer.pending or self._writer.size:
            self._rotate()
        prune_snapshots(self.data_dir, keep=2)
        snaps = list_snapshots(self.data_dir)
        retained_floor = snaps[0][0] if snaps else applied_seq
        survivors = []
        for seg_path, max_op_seq in self._closed_segments:
            if max_op_seq < retained_floor:
                try:
                    os.remove(seg_path)
                    self.segments_truncated += 1
                except OSError:
                    survivors.append((seg_path, max_op_seq))
            else:
                survivors.append((seg_path, max_op_seq))
        self._closed_segments = survivors
        fsync_dir(self.log_dir)
        return path

    # -- read path -----------------------------------------------------------

    def load(self) -> RecoveredState:
        """Salvage snapshot + log into a :class:`RecoveredState`.

        Safe to call on a live store (reads only closed bytes), but the
        intended use is at startup before any appends.
        """
        return load_data_dir(self.data_dir)

    def read_ops(self, from_seq: int = 0) -> list[tuple[int, Any]]:
        """Persisted ops with seq >= from_seq, in seq order.

        Flushes the live segment first so the read sees every committed
        record; used by the bus's disk-replay fallback.
        """
        if self._writer is not None:
            self._writer.commit()
        return read_ops_from_dir(self.data_dir, from_seq)

    # -- misc ----------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        writer = self._writer
        return {
            "ops_appended": self.ops_appended,
            "dlq_appended": self.dlq_appended,
            "commits": self.commits,
            "fsyncs": writer.fsyncs if writer else 0,
            "bytes_written": self.bytes_written,
            "snapshots_written": self.snapshots_written,
            "segments_truncated": self.segments_truncated,
            "segments": len(self._closed_segments) + 1,
            "dlq_pending": len(self._dlq_pending),
            "fsync_policy": self.fsync,
        }

    @property
    def latest_snapshot_seq(self) -> int:
        snaps = list_snapshots(self.data_dir)
        return snaps[-1][0] if snaps else -1

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
