"""Node recovery: snapshot + log suffix replay onto a live runtime.

``snapshot_state`` projects a node's applied state into a plain
codec-encodable dict; ``restore_node`` is its inverse plus a replay of
every persisted op at or past the snapshot's applied seq through the
coordinator's ordinary hold-back path — the same code that applied them
the first time, so replica determinism carries over to recovery for
free.

The directory rebuild uses :meth:`Directory.restore_entry`, which skips
capability and cycle checks — both were validated when each op
originally applied, and the presented capabilities are deliberately not
persisted.  Bindings (the keys needed to validate *future* ops) are
restored afterwards via ``bind_capability``.

What recovery resyncs besides the directory:

* ``coordinator._next_apply_seq`` — so suffix replay starts exactly at
  the snapshot boundary and earlier ops are ignored as duplicates;
* ``coordinator._next_origin_seq`` — from the snapshot plus any of the
  node's own persisted ops, so the restarted node keeps minting origin
  seqs where its previous incarnation stopped (ghost re-registration
  with colliding origin seqs is what this prevents);
* ``addresses._next_serial`` — so fresh actors/spaces cannot collide
  with persisted addresses;
* the dead-letter queue — pending letters re-adopted with their attempt
  counts and lifetime counters restored;
* the bus's log/dedup state (handled by the caller, which knows which
  bus implementation it is driving).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..core.actorspace import SpaceRecord
from ..core.manager import default_manager

if TYPE_CHECKING:  # pragma: no cover
    from .node_store import RecoveredState

#: Version stamp for the snapshot state shape below.
SNAPSHOT_VERSION = 1


def snapshot_state(node_id: int, coordinator: Any, dead_letters: Any,
                   extra: dict | None = None) -> dict:
    """Project applied node state into a codec-encodable snapshot dict.

    ``extra`` lets the caller fold in bus-specific state (e.g. the
    remote bus's per-origin dedup watermarks).  Quarantine overlays and
    parked pattern messages are transient and deliberately excluded.
    """
    directory = coordinator.directory
    spaces = []
    entries = []
    for rec in directory.spaces():
        spaces.append({
            "address": rec.address,
            "capability": rec.capability,
            "node": rec.node,
            "created_at": rec.created_at,
        })
        for entry in rec.entries():
            entries.append({
                "space": rec.address,
                "target": entry.target,
                "attributes": sorted(entry.attributes, key=str),
                "registered_at": entry.registered_at,
            })
    caps = [
        {"target": target, "capability": cap}
        for target, cap in directory.capability_bindings()
    ]
    letters = []
    for dst_node, queue in dead_letters.queues().items():
        for letter in queue:
            letters.append({
                "envelope": letter.envelope,
                "dst": letter.dst_node,
                "reason": letter.reason,
                "queued_at": letter.queued_at,
                "attempts": letter.attempts,
            })
    state = {
        "version": SNAPSHOT_VERSION,
        "node": node_id,
        "applied_seq": coordinator._next_apply_seq,
        "origin_seq": coordinator._next_origin_seq,
        "addr_serial": coordinator.addresses._next_serial,
        "spaces": spaces,
        "entries": entries,
        "caps": caps,
        "dlq": letters,
        "dlq_counters": {
            "queued_total": dead_letters.queued_total,
            "redelivered_total": dead_letters.redelivered_total,
            "expired_total": dead_letters.expired_total,
        },
    }
    if extra:
        state.update(extra)
    return state


def _restore_directory(coordinator: Any, state: dict) -> None:
    directory = coordinator.directory
    for s in state.get("spaces", ()):
        record = SpaceRecord(s["address"], s.get("capability"),
                             s.get("node", 0), created_at=s.get("created_at", 0.0))
        try:
            directory.add_space(record)
        except ValueError:
            record = directory.space(s["address"])  # pre-bootstrapped root
        coordinator.managers.setdefault(s["address"], default_manager())
    for e in state.get("entries", ()):
        directory.restore_entry(
            e["target"], e["attributes"], e["space"],
            now=e.get("registered_at", 0.0),
        )
    for c in state.get("caps", ()):
        directory.bind_capability(c["target"], c.get("capability"))


def _restore_dead_letters(dead_letters: Any, store: Any, state: dict,
                          dlq_events: list[dict]) -> int:
    """Re-adopt snapshot letters, fold in the journal suffix; returns
    the number of letters pending after restoration."""
    counters = dict(state.get("dlq_counters", {}))
    pending: dict[int, dict] = {}
    for letter in state.get("dlq", ()):
        pending[letter["envelope"].envelope_id] = dict(letter)
    for event in dlq_events:
        kind = event.get("kind")
        if kind in ("capture", "retry"):
            pending[event["envelope"].envelope_id] = event
            if kind == "capture":
                counters["queued_total"] = counters.get("queued_total", 0) + 1
        elif kind == "resolve":
            if pending.pop(event["id"], None) is not None:
                counters["redelivered_total"] = (
                    counters.get("redelivered_total", 0) + 1)
        elif kind == "expire":
            if pending.pop(event["id"], None) is not None:
                counters["expired_total"] = counters.get("expired_total", 0) + 1
    for letter in pending.values():
        dead_letters.adopt(
            letter["envelope"], letter["dst"], letter["reason"],
            queued_at=letter.get("queued_at", 0.0),
            attempts=letter.get("attempts", 0),
        )
    dead_letters.queued_total = counters.get("queued_total", 0)
    dead_letters.redelivered_total = counters.get("redelivered_total", 0)
    dead_letters.expired_total = counters.get("expired_total", 0)
    if store is not None:
        store.adopt_pending(pending.keys())
    return len(pending)


def restore_node(node_id: int, coordinator: Any, dead_letters: Any,
                 recovered: "RecoveredState", store: Any = None) -> dict:
    """Rebuild a node from a :class:`RecoveredState`.

    Returns a summary dict (snapshot seq, ops replayed, letters
    re-adopted, max origin seq) for logs and control-plane status.  The
    caller is responsible for bus-level state (log/dedup rebuild) and
    for writing a fresh snapshot afterwards.
    """
    state = recovered.snapshot or {}
    applied_floor = state.get("applied_seq", 0) if recovered.snapshot else 0
    if recovered.snapshot is not None:
        _restore_directory(coordinator, state)
        coordinator._next_apply_seq = applied_floor
        coordinator._next_origin_seq = max(
            coordinator._next_origin_seq, state.get("origin_seq", 0))
        coordinator.addresses._next_serial = max(
            coordinator.addresses._next_serial, state.get("addr_serial", 0))
    letters_pending = _restore_dead_letters(
        dead_letters, store, state, recovered.dlq_events)
    # Replay the op suffix through the ordinary hold-back path.  Ops
    # below the floor are already folded into the snapshot; the
    # hold-back ignores them because _next_apply_seq is past them.
    replayed = 0
    for seq in sorted(recovered.ops):
        if seq < applied_floor:
            continue
        op = recovered.ops[seq]
        coordinator.on_bus_delivery(seq, op)
        replayed += 1
        if op.origin_node == node_id:
            coordinator._next_origin_seq = max(
                coordinator._next_origin_seq, op.origin_seq + 1)
    # Address serials are embedded in op args (ADD_SPACE addresses,
    # MAKE_VISIBLE targets minted here); walk them so a snapshot-less
    # recovery still resyncs the factory.
    serial_floor = _max_serial_in_ops(node_id, recovered.ops.values())
    coordinator.addresses._next_serial = max(
        coordinator.addresses._next_serial, serial_floor + 1)
    return {
        "snapshot_seq": recovered.snapshot_seq,
        "applied_seq": coordinator._next_apply_seq,
        "ops_replayed": replayed,
        "dlq_recovered": letters_pending,
        "origin_seq": coordinator._next_origin_seq,
        "records_dropped": recovered.report.records_dropped,
        "corrupt_segments": len(recovered.report.corrupt_segments),
    }


def _max_serial_in_ops(node_id: int, ops) -> int:
    best = -1
    for op in ops:
        for value in op.args.values():
            serial = getattr(value, "serial", None)
            if serial is not None and getattr(value, "node", None) == node_id:
                best = max(best, serial)
    return best
