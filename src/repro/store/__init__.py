"""Durable storage: the event-sourced bus log, snapshots, and recovery.

This package is the README of the durability layer.  It persists the two
pieces of node state the paper's open-system stance (§2, §7) needs to
survive a full restart: the **sequenced visibility log** (the total order
every replica applied, §7.3) and the **dead-letter queue** (envelopes
parked for redelivery).  Directories themselves are *derived* state —
they are rebuilt by replaying the log — so what goes to disk is the
event-sourcing classic: an append-only log plus periodic snapshots.

Layout of a node's data directory::

    <data-dir>/
        log/
            seg-00000001.log      append-only record segments
            seg-00000002.log
            ...
        snapshot-000000000000000042.snap    state at applied seq 42
        snapshot-*.snap.tmp                 in-progress writes (ignored)

Record format (``segment.py``)
------------------------------
Every record is ``u32 length | u32 crc32 | payload`` where ``payload``
is one value in the deterministic closed-world wire encoding of
:mod:`repro.net.codec` — the same bytes that cross sockets are the bytes
that hit disk, so everything the cluster can say is persistable and
nothing else is (no pickle, ever).  The CRC covers the payload; a record
either decodes completely and passes its checksum, or it is not a record.
Readers salvage the longest valid prefix of each segment, report honest
``records_dropped`` / ``bytes_dropped`` counts for what they could not
trust, and never raise on corrupt input (:func:`segment.scan_segments`).

Durability contract (fsync-on-commit batching)
----------------------------------------------
Appends buffer in memory; :meth:`NodeStore.commit` writes the whole
batch with one ``write()`` and — under the default ``fsync="commit"``
policy — one ``fsync()``.  The write path is a transactional outbox: the
bus persists **and commits** a sequenced op *before* delivering it to
the local coordinator, so any state a crash can lose is state that was
never applied.  Concretely:

* ``fsync="commit"`` — every commit is fsynced.  A record returned by
  recovery was durable at the moment its commit call returned; this is
  the policy ``repro serve --data-dir`` runs with.
* ``fsync="batch"``  — commits ``flush()`` to the OS but fsync at most
  once per ``batch_interval`` seconds.  Survives process crashes, may
  lose the last interval on power loss.  For benchmarks and drills.
* ``fsync="never"``  — flush only.  Measurement baseline.

Snapshots (``snapshot.py``) are epoch-stamped by the applied sequence
number, written to a temporary file, fsynced, then atomically
``rename()``d into place (the directory entry is fsynced too), so a
crash mid-snapshot leaves the previous snapshot intact.  After a
successful snapshot the store rotates its segment and deletes closed
segments whose ops are entirely below the snapshot seq — log truncation
without ever touching the live tail.

Recovery (``recovery.py``) rebuilds a node as *snapshot + log suffix
replay*: restore the directory/managers/capabilities/DLQ from the
snapshot, then re-drive every persisted op at or past the snapshot's
applied seq through the coordinator's ordinary hold-back application
path.  Origin sequence numbers and the address-factory serial are
resynced from persisted state, so a restarted node continues minting
where its previous incarnation stopped instead of ghost re-registering
colliding addresses.

On top of the same bytes, ``replay.py`` implements ``python -m repro
replay`` — an offline deterministic time-travel debugger (``--until``,
``--diff``, Chrome-trace export) whose canonical state export is
byte-identical across runs; ``repro check --log`` re-drives a persisted
log against the §5 reference model.

What is *not* persisted: actor behaviors and mailboxes (code and
in-flight conversation die with the process — the paper's actors are
not durable objects), parked pattern messages, and quarantine masks
(the failure detector re-derives them).
"""

from __future__ import annotations

from .node_store import NodeStore, RecoveredState
from .recovery import restore_node, snapshot_state
from .segment import ReadReport, SegmentWriter, scan_segments
from .snapshot import load_latest_snapshot, write_snapshot

__all__ = [
    "NodeStore",
    "RecoveredState",
    "ReadReport",
    "SegmentWriter",
    "scan_segments",
    "load_latest_snapshot",
    "write_snapshot",
    "restore_node",
    "snapshot_state",
]
