"""Small statistics helpers shared by experiments and tests."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def summarize(values: Iterable[float]) -> dict:
    """Mean / std / min / p50 / p95 / max of a sample (empty-safe)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {k: 0.0 for k in ("count", "mean", "std", "min", "p50", "p95", "max")}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }


def chi_square_uniform(counts: Sequence[int]) -> float:
    """Chi-square statistic of ``counts`` against the uniform distribution.

    Used by E2 to test that ``send`` load-balances replicas: small values
    mean near-uniform assignment.  Returns 0 for degenerate inputs.
    """
    arr = np.asarray(counts, dtype=float)
    if arr.size < 2 or arr.sum() == 0:
        return 0.0
    expected = arr.sum() / arr.size
    return float(((arr - expected) ** 2 / expected).sum())


def coefficient_of_variation(values: Sequence[float]) -> float:
    """std/mean — the load-imbalance metric for E14 (0 = perfectly balanced)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0 or arr.mean() == 0:
        return 0.0
    return float(arr.std() / arr.mean())


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of non-negative ``values`` (another imbalance lens)."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0 or arr.sum() == 0:
        return 0.0
    n = arr.size
    index = np.arange(1, n + 1)
    return float((2 * (index * arr).sum() - (n + 1) * arr.sum()) / (n * arr.sum()))
