"""Paper-style plain-text tables for the benchmark harnesses.

Every experiment prints its rows through :class:`TextTable` so the
bench output reads like the table it reproduces, and EXPERIMENTS.md can
paste the output verbatim.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


class TextTable:
    """A fixed-column text table with aligned rendering.

    >>> t = TextTable(["n", "value"], title="demo")
    >>> t.add_row([1, 2.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        row = [_fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(sep))
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    @classmethod
    def parse(cls, text: str) -> "TextTable":
        """Rebuild a table from :meth:`render` output (round-trip).

        Lets the drift checks read the tables persisted under
        ``benchmarks/results/`` back into structured rows.  Cell values
        come back as the rendered strings.
        """
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("cannot parse an empty table")
        title = None
        if len(lines) >= 2 and set(lines[1]) == {"="}:
            title = lines[0]
            lines = lines[2:]
        if len(lines) < 2 or set(lines[1]) - {"-", "+"}:
            raise ValueError("not a rendered TextTable: missing header separator")
        header = [c.strip() for c in lines[0].split(" | ")]
        table = cls(header, title=title)
        for line in lines[2:]:
            table.rows.append([c.strip() for c in line.split(" | ")])
        return table

    def __str__(self):
        return self.render()
