"""ASCII space-time diagrams from the tracer's latency samples.

Turns a run's recorded deliveries into a per-node message timeline — the
quickest way to *see* locality (E4), suspension release bursts (E6), or
load imbalance, straight in a terminal.  Purely presentational: reads the
tracer, writes a string.

Example output::

    t=0.00                                         t=2.41
    node 0 |s--d----s------d-------------------------|
    node 1 |---d-------du--------------d--------------|
    node 2 |------du------------d---------------------|
            s=sent here   d=delivered here   u=suspension release

Each column is one time bucket; a cell shows the most interesting event
class that happened on that node in that bucket.
"""

from __future__ import annotations

from repro.runtime.tracing import Tracer


def render_timeline(
    tracer: Tracer,
    node_count: int,
    width: int = 72,
    t_start: float | None = None,
    t_end: float | None = None,
) -> str:
    """Render the tracer's samples as a per-node ASCII timeline.

    ``width`` is the number of time buckets.  Returns a multi-line
    string; empty tracers render an explanatory stub.
    """
    samples = tracer.samples
    if not samples:
        return "(no latency samples recorded — construct the system with keep_samples=True)"
    lo = t_start if t_start is not None else min(s.sent_at for s in samples)
    hi = t_end if t_end is not None else max(s.delivered_at for s in samples)
    if hi <= lo:
        hi = lo + 1e-9
    span = hi - lo

    def bucket(t: float) -> int:
        b = int((t - lo) / span * (width - 1))
        return max(0, min(width - 1, b))

    # Priority per cell: delivery beats suspension release beats send.
    grid = [[" "] * width for _ in range(node_count)]
    for sample in samples:
        sb = bucket(sample.sent_at)
        db = bucket(sample.delivered_at)
        if 0 <= sample.src_node < node_count and grid[sample.src_node][sb] == " ":
            grid[sample.src_node][sb] = "s"
        if 0 <= sample.dst_node < node_count:
            grid[sample.dst_node][db] = "d"
    for t, node in getattr(tracer, "release_marks", ()):
        if 0 <= node < node_count and lo <= t <= hi:
            cell = bucket(t)
            if grid[node][cell] != "d":
                grid[node][cell] = "u"

    label_width = len(f"node {node_count - 1}")
    lines = [
        f"{'':{label_width}}  t={lo:.2f}{'':{max(0, width - len(f'{lo:.2f}') - len(f'{hi:.2f}') - 4)}}t={hi:.2f}"
    ]
    for node in range(node_count):
        row = "".join(grid[node])
        lines.append(f"{f'node {node}':{label_width}} |{row}|")
    lines.append(
        f"{'':{label_width}}  s=sent from here   d=delivered here   "
        "u=suspension release"
    )
    return "\n".join(lines)


def render_load_bars(
    counts: dict, width: int = 40, title: str = "deliveries per receiver"
) -> str:
    """Horizontal bar chart of per-receiver delivery counts."""
    if not counts:
        return "(no deliveries recorded)"
    peak = max(counts.values()) or 1
    lines = [title]
    for key in sorted(counts, key=lambda k: (-counts[k], str(k))):
        bar = "#" * max(1, int(counts[key] / peak * width))
        lines.append(f"  {str(key):16s} {bar} {counts[key]}")
    return "\n".join(lines)
