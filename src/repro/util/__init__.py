"""Shared utilities: table rendering and summary statistics."""

from .stats import chi_square_uniform, coefficient_of_variation, gini, summarize
from .tables import TextTable
from .timeline import render_load_bars, render_timeline

__all__ = [
    "TextTable",
    "chi_square_uniform",
    "coefficient_of_variation",
    "gini",
    "render_load_bars",
    "render_timeline",
    "summarize",
]
