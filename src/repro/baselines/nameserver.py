"""A global naming service: the classic open-systems baseline (section 3).

"Open systems which use explicit references to objects and message
passing as coordination primitives usually offer a global naming service
to which all objects have a reference.  This naming service can then be
queried for other references ... Objects may register themselves if they
want other objects to send messages to them."

The name server is an actor; clients must (1) register under a string
name, (2) look a name up — one full round trip — and only then (3) send
to the returned address.  Compared with ActorSpace's one-hop pattern send
this costs an extra round trip per first contact and cannot express
"one of whichever servers currently match" without the server's help
(lookup returns the registrar's choice, not the system's).

Protocol payloads:

* ``("register", name, addr)`` — bind; replies ``("ok", name)``;
* ``("unregister", name)`` — unbind; replies ``("ok", name)``;
* ``("lookup", name)`` — replies ``("addr", name, addr)`` or
  ``("unknown", name)``;
* ``("list", prefix)`` — replies ``("names", [names...])`` (directory
  scan; the closest analogue to a pattern query, and still returns names
  rather than delivering messages).
"""

from __future__ import annotations

from typing import Any

from repro.core.actor import ActorContext, Behavior
from repro.core.messages import Message


class NameServerBehavior(Behavior):
    """The naming-service actor."""

    def __init__(self):
        self.names: dict[str, Any] = {}
        self.lookups = 0
        self.registrations = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        op, *rest = message.payload
        reply_to = message.reply_to
        if op == "register":
            name, addr = rest
            self.names[name] = addr
            self.registrations += 1
            if reply_to is not None:
                ctx.send_to(reply_to, ("ok", name))
        elif op == "unregister":
            (name,) = rest
            self.names.pop(name, None)
            if reply_to is not None:
                ctx.send_to(reply_to, ("ok", name))
        elif op == "lookup":
            (name,) = rest
            self.lookups += 1
            addr = self.names.get(name)
            if reply_to is not None:
                if addr is None:
                    ctx.send_to(reply_to, ("unknown", name))
                else:
                    ctx.send_to(reply_to, ("addr", name, addr))
        elif op == "list":
            (prefix,) = rest
            found = sorted(n for n in self.names if n.startswith(prefix))
            if reply_to is not None:
                ctx.send_to(reply_to, ("names", found))
        else:
            raise ValueError(f"unknown name-server op {op!r}")


class LookupThenSendClient(Behavior):
    """A client that resolves a name, then sends its payload directly.

    Reports ``("sent", name, hops)`` to the monitor after dispatching,
    where ``hops`` counts the messages this client needed (lookup request
    + reply + payload = 3, versus 1 for an ActorSpace pattern send).
    """

    def __init__(self, nameserver, name: str, payload: Any, monitor=None):
        self.nameserver = nameserver
        self.name = name
        self.payload = payload
        self.monitor = monitor
        self.hops = 0

    def on_start(self, ctx: ActorContext) -> None:
        self.hops += 1
        ctx.send_to(self.nameserver, ("lookup", self.name),
                    reply_to=ctx.self_address)

    def receive(self, ctx: ActorContext, message: Message) -> None:
        tag, *rest = message.payload
        if tag == "addr":
            self.hops += 1  # the lookup reply
            _name, addr = rest
            self.hops += 1  # the payload itself
            ctx.send_to(addr, self.payload, reply_to=ctx.self_address)
            if self.monitor is not None:
                ctx.send_to(self.monitor, ("sent", self.name, self.hops))
            ctx.terminate()
        elif tag == "unknown":
            self.hops += 1  # the (negative) lookup reply
            # The name is not (yet) bound: the client's only option is to
            # retry later — a polling loop, unlike ActorSpace suspension.
            ctx.schedule(0.5, ("retry",))
        elif tag == "retry":
            self.hops += 1  # the retried lookup request
            ctx.send_to(self.nameserver, ("lookup", self.name),
                        reply_to=ctx.self_address)
