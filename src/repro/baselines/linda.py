"""A Linda tuple space on the same simulated substrate (paper section 3).

The paper positions ActorSpace against Linda [8, 16]: "in Linda and its
variants, processes must actively poll a tuple space and specify the type
of tuple they want to retrieve", with three consequences the E5
experiment measures or demonstrates:

1. polling costs messages and latency (``inp``/``rdp`` retry loops);
2. "communication cannot be made secure against arbitrary readers" —
   any process may ``in`` (consume) any matching tuple;
3. race conditions between concurrent consumers.

The tuple space is itself an actor (a central kernel on one node), so
Linda programs and ActorSpace programs run on the *same* event loop,
network model, and tracer — message counts and latencies are directly
comparable.

Protocol (payloads to the tuple-space actor):

* ``("out", tup)`` — deposit a tuple (no reply);
* ``("in", template)`` / ``("rd", template)`` — blocking take/read: the
  kernel replies ``("tuple", tup)`` when a match exists, queueing the
  request otherwise;
* ``("inp", template)`` / ``("rdp", template)`` — non-blocking probe: the
  kernel replies immediately with ``("tuple", tup)`` or ``("no-match",
  template)`` — the primitive behind the polling idiom.

Templates are tuples whose fields are concrete values, the :data:`ANY`
wildcard, or a Python type (matches by ``isinstance``).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.actor import ActorContext, Behavior
from repro.core.messages import Message


class _AnyToken:
    """Wildcard template field."""

    def __repr__(self):
        return "ANY"


#: Matches any value in a template field.
ANY = _AnyToken()


def matches(template: tuple, candidate: tuple) -> bool:
    """Linda template matching: arity plus per-field value/type/wildcard."""
    if len(template) != len(candidate):
        return False
    for want, have in zip(template, candidate):
        if want is ANY:
            continue
        if isinstance(want, type):
            if not isinstance(have, want):
                return False
            continue
        if want != have:
            return False
    return True


class TupleSpaceBehavior(Behavior):
    """The Linda kernel: holds tuples, serves out/in/rd/inp/rdp.

    Blocking requests queue in arrival order; each ``out`` first tries to
    satisfy the oldest compatible waiter (``in`` consumes, ``rd`` does
    not), which reproduces Linda's first-match, kernel-arbitrated
    semantics — including the consume races the paper criticizes.
    """

    def __init__(self):
        self.tuples: list[tuple] = []
        #: Waiting blocking requests: (kind, template, reply_to).
        self.waiting: deque[tuple[str, tuple, Any]] = deque()
        self.ops = {"out": 0, "in": 0, "rd": 0, "inp": 0, "rdp": 0}

    # -- helpers -----------------------------------------------------------------

    def _find(self, template: tuple) -> int | None:
        for i, tup in enumerate(self.tuples):
            if matches(template, tup):
                return i
        return None

    def _reply(self, ctx: ActorContext, to, payload) -> None:
        if to is not None:
            ctx.send_to(to, payload)

    # -- protocol ------------------------------------------------------------------

    def receive(self, ctx: ActorContext, message: Message) -> None:
        op, *rest = message.payload
        reply_to = message.reply_to
        if op == "out":
            self.ops["out"] += 1
            (tup,) = rest
            self._deposit(ctx, tuple(tup))
        elif op in ("in", "rd"):
            self.ops[op] += 1
            (template,) = rest
            idx = self._find(tuple(template))
            if idx is None:
                self.waiting.append((op, tuple(template), reply_to))
            else:
                tup = self.tuples[idx]
                if op == "in":
                    del self.tuples[idx]
                self._reply(ctx, reply_to, ("tuple", tup))
        elif op in ("inp", "rdp"):
            self.ops[op] += 1
            (template,) = rest
            idx = self._find(tuple(template))
            if idx is None:
                self._reply(ctx, reply_to, ("no-match", tuple(template)))
            else:
                tup = self.tuples[idx]
                if op == "inp":
                    del self.tuples[idx]
                self._reply(ctx, reply_to, ("tuple", tup))
        elif op == "count":
            self._reply(ctx, reply_to, ("count", len(self.tuples)))
        else:
            raise ValueError(f"unknown tuple-space op {op!r}")

    def _deposit(self, ctx: ActorContext, tup: tuple) -> None:
        """Add a tuple, first serving the oldest compatible blocked waiter."""
        remaining: deque[tuple[str, tuple, Any]] = deque()
        consumed = False
        while self.waiting:
            kind, template, reply_to = self.waiting.popleft()
            if not consumed and matches(template, tup):
                self._reply(ctx, reply_to, ("tuple", tup))
                if kind == "in":
                    consumed = True
                # rd waiters keep draining against the same tuple
            else:
                remaining.append((kind, template, reply_to))
        self.waiting = remaining
        if not consumed:
            self.tuples.append(tup)


class PollingConsumer(Behavior):
    """A Linda client that polls with ``inp`` until a match appears.

    This is the retry idiom the paper contrasts with ActorSpace's
    suspended sends: each failed probe costs a request/response round
    trip.  On success the consumer reports ``("got", tuple, polls)`` to
    its monitor and stops.
    """

    def __init__(self, space_addr, template: tuple, poll_interval: float,
                 monitor=None):
        self.space_addr = space_addr
        self.template = tuple(template)
        self.poll_interval = poll_interval
        self.monitor = monitor
        self.polls = 0
        self.result: tuple | None = None

    def on_start(self, ctx: ActorContext) -> None:
        self._probe(ctx)

    def _probe(self, ctx: ActorContext) -> None:
        self.polls += 1
        ctx.send_to(self.space_addr, ("inp", self.template),
                    reply_to=ctx.self_address)

    def receive(self, ctx: ActorContext, message: Message) -> None:
        tag, *rest = message.payload
        if tag == "tuple":
            self.result = rest[0]
            if self.monitor is not None:
                ctx.send_to(self.monitor, ("got", rest[0], self.polls))
            ctx.terminate()
        elif tag == "no-match":
            ctx.schedule(self.poll_interval, ("poll",))
        elif tag == "poll":
            self._probe(ctx)


class BlockingConsumer(Behavior):
    """A Linda client using a blocking ``in`` (kernel-queued, no polling)."""

    def __init__(self, space_addr, template: tuple, monitor=None):
        self.space_addr = space_addr
        self.template = tuple(template)
        self.monitor = monitor
        self.result: tuple | None = None

    def on_start(self, ctx: ActorContext) -> None:
        ctx.send_to(self.space_addr, ("in", self.template),
                    reply_to=ctx.self_address)

    def receive(self, ctx: ActorContext, message: Message) -> None:
        tag, *rest = message.payload
        if tag == "tuple":
            self.result = rest[0]
            if self.monitor is not None:
                ctx.send_to(self.monitor, ("got", rest[0], 1))
            ctx.terminate()
