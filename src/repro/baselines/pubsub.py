"""Topic-based publish/subscribe: the modern approximation baseline.

Today's closest mainstream analogue of pattern-directed group addressing
is topic pub/sub.  The essential difference: a **topic is an exact
string** agreed between publisher and subscriber, whereas an ActorSpace
pattern is *evaluated against attributes* at send time.  Multi-facet
addressing ("all sensors in building 2, any floor") therefore forces a
topic design decision — pre-create one topic per facet combination (topic
explosion, and publishers must enumerate the slice), or use coarse topics
and filter at the subscriber (wasted deliveries).  Experiment E17
measures both against one ActorSpace pattern.

The broker is an actor on the shared substrate (like the Linda kernel),
so message counts and latencies are directly comparable.

Protocol payloads to the broker:

* ``("subscribe", topic)`` — ``reply_to`` becomes a subscriber;
* ``("unsubscribe", topic)``;
* ``("publish", topic, payload)`` — forwarded as
  ``("event", topic, payload)`` to every *exact* subscriber of ``topic``;
  unknown topics are dropped (counted).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.actor import ActorContext, Behavior
from repro.core.messages import Message


class TopicBrokerBehavior(Behavior):
    """A minimal exact-match topic broker."""

    def __init__(self):
        self.subscribers: dict[str, list] = defaultdict(list)
        self.published = 0
        self.forwarded = 0
        self.dropped_no_topic = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        op, *rest = message.payload
        if op == "subscribe":
            (topic,) = rest
            subs = self.subscribers[topic]
            if message.reply_to is not None and message.reply_to not in subs:
                subs.append(message.reply_to)
        elif op == "unsubscribe":
            (topic,) = rest
            if message.reply_to is not None:
                try:
                    self.subscribers[topic].remove(message.reply_to)
                except ValueError:
                    pass
        elif op == "publish":
            topic, payload = rest
            self.published += 1
            subs = self.subscribers.get(topic, ())
            if not subs:
                self.dropped_no_topic += 1
            for subscriber in subs:
                self.forwarded += 1
                ctx.send_to(subscriber, ("event", topic, payload))
        else:
            raise ValueError(f"unknown broker op {op!r}")

    @property
    def topic_count(self) -> int:
        """Topics with at least one live subscriber."""
        return sum(1 for subs in self.subscribers.values() if subs)


class FilteringSubscriber(Behavior):
    """A subscriber on coarse topics that filters events client-side.

    ``wanted(payload) -> bool`` decides relevance; irrelevant events are
    counted as waste — the traffic a finer addressing scheme would never
    have sent.
    """

    def __init__(self, wanted):
        self.wanted = wanted
        self.accepted: list = []
        self.wasted = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, _topic, payload = message.payload
        assert kind == "event"
        if self.wanted(payload):
            self.accepted.append(payload)
        else:
            self.wasted += 1
