"""Section-3 comparison systems, built on the same simulated substrate.

Each baseline runs on the identical event loop, network model, and tracer
as ActorSpace itself, so experiment E5 (and the churn variants of E1/E2)
compare message counts and latencies like-for-like.
"""

from .aggregates import Aggregate, AggregateSystem, HierarchyError
from .groups import EmptyGroupError, GroupRegistry, UnknownGroupError
from .linda import (
    ANY,
    BlockingConsumer,
    PollingConsumer,
    TupleSpaceBehavior,
    matches,
)
from .nameserver import LookupThenSendClient, NameServerBehavior
from .pubsub import FilteringSubscriber, TopicBrokerBehavior

__all__ = [
    "ANY",
    "Aggregate",
    "AggregateSystem",
    "BlockingConsumer",
    "EmptyGroupError",
    "GroupRegistry",
    "HierarchyError",
    "LookupThenSendClient",
    "NameServerBehavior",
    "FilteringSubscriber",
    "TopicBrokerBehavior",
    "PollingConsumer",
    "TupleSpaceBehavior",
    "UnknownGroupError",
    "matches",
]
