"""Concurrent Aggregates: the strict-hierarchy baseline (section 3).

"Concurrent Aggregates offers a communication style similar to Linda;
clients name a group of actors when sending a message, and one of these
actors will actually receive the message.  Furthermore, Concurrent
Aggregates supports nesting of aggregates, so that an entire group of
aggregates may be targeted for a message.  Note that membership and
containment relationships in this model correspond to a strict hierarchy.
On the other hand, actorSpaces may overlap arbitrarily."

This module implements exactly that: an :class:`Aggregate` has actor
members and child aggregates, and every aggregate has **at most one
parent** — the tree invariant is enforced at ``add_child`` and is the
point of comparison with the ActorSpace visibility DAG (a space may be
visible in many spaces at once; an aggregate may not).
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.core.addresses import ActorAddress
from repro.core.errors import ActorSpaceError


class HierarchyError(ActorSpaceError):
    """An operation would violate the strict-hierarchy invariant."""


class Aggregate:
    """A named node of the aggregate tree."""

    __slots__ = ("name", "members", "children", "parent")

    def __init__(self, name: str):
        self.name = name
        self.members: list[ActorAddress] = []
        self.children: list["Aggregate"] = []
        self.parent: "Aggregate | None" = None

    def add_member(self, member: ActorAddress) -> None:
        if member not in self.members:
            self.members.append(member)

    def remove_member(self, member: ActorAddress) -> None:
        try:
            self.members.remove(member)
        except ValueError:
            pass

    def add_child(self, child: "Aggregate") -> None:
        """Attach ``child`` beneath this aggregate.

        Raises
        ------
        HierarchyError
            If ``child`` already has a parent (membership is exclusive:
            the strict hierarchy) or the attachment would create a cycle.
        """
        if child.parent is not None:
            raise HierarchyError(
                f"{child.name!r} already belongs to {child.parent.name!r}; "
                "aggregates form a strict hierarchy"
            )
        node: Aggregate | None = self
        while node is not None:
            if node is child:
                raise HierarchyError(
                    f"attaching {child.name!r} under {self.name!r} would create a cycle"
                )
            node = node.parent
        child.parent = self
        self.children.append(child)

    def detach(self) -> None:
        """Remove this aggregate from its parent."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None

    def all_members(self) -> Iterator[ActorAddress]:
        """Members of this aggregate and, recursively, all descendants."""
        yield from self.members
        for child in self.children:
            yield from child.all_members()

    def __repr__(self):
        return (
            f"<Aggregate {self.name!r} members={len(self.members)} "
            f"children={len(self.children)}>"
        )


class AggregateSystem:
    """Driver-level registry and communication for aggregates."""

    def __init__(self, system, rng: np.random.Generator | None = None):
        self.system = system
        self._aggregates: dict[str, Aggregate] = {}
        self._rng = rng if rng is not None else system.rng.stream("aggregates")
        self.sends = 0
        self.casts = 0

    def create(self, name: str) -> Aggregate:
        if name in self._aggregates:
            raise ValueError(f"aggregate {name!r} already exists")
        agg = Aggregate(name)
        self._aggregates[name] = agg
        return agg

    def get(self, name: str) -> Aggregate:
        agg = self._aggregates.get(name)
        if agg is None:
            raise KeyError(f"no such aggregate: {name}")
        return agg

    # -- communication -----------------------------------------------------------

    def deliver_one(self, name: str, payload: Any, *, reply_to=None) -> ActorAddress:
        """CA-style send: one member of the (recursive) group receives it."""
        candidates = sorted(self.get(name).all_members())
        if not candidates:
            raise HierarchyError(f"aggregate {name!r} has no members")
        choice = candidates[int(self._rng.integers(0, len(candidates)))]
        self.sends += 1
        self.system.send_to(choice, payload, reply_to=reply_to)
        return choice

    def deliver_all(self, name: str, payload: Any, *, reply_to=None) -> int:
        """Target the entire (recursive) group."""
        candidates = sorted(set(self.get(name).all_members()))
        if not candidates:
            raise HierarchyError(f"aggregate {name!r} has no members")
        self.casts += 1
        for member in candidates:
            self.system.send_to(member, payload, reply_to=reply_to)
        return len(candidates)

    def __repr__(self):
        return f"<AggregateSystem {sorted(self._aggregates)}>"
