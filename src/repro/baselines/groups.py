"""Static process groups: the Amoeba / V-System / ISIS baseline (section 3).

"Object groups can be viewed as an association of one name with a set of
names (corresponding to members of the group), which when bundled with
primitives for manipulation of groups and extension of communication
primitives to groups of receivers support group oriented communication."

The registry binds a group *name* to an explicit member list.  Two
communication primitives mirror ActorSpace's ``send``/``broadcast``:

* :meth:`GroupRegistry.group_send` — deliver to one member;
* :meth:`GroupRegistry.group_cast` — deliver to every member.

The structural difference the paper leans on: membership is **explicit
and enumerated**.  Every join/leave is an API call that mutates the list,
and a sender addressing a group that does not exist (or is empty) simply
fails — there is no attribute matching, no scoped overlap, and no
suspension.  Experiment E1/E2 variants use this registry to quantify the
bookkeeping messages explicit membership costs when the group churns.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.addresses import ActorAddress
from repro.core.errors import ActorSpaceError


class UnknownGroupError(ActorSpaceError):
    """The named group does not exist."""


class EmptyGroupError(ActorSpaceError):
    """The named group has no members to deliver to."""


class GroupRegistry:
    """Explicit-membership process groups over an ActorSpace system.

    The registry is driver-level state (the moral equivalent of a group
    membership service).  Every membership mutation is counted, so
    experiments can compare bookkeeping traffic against attribute-based
    group definition.
    """

    def __init__(self, system, rng: np.random.Generator | None = None):
        self.system = system
        self._groups: dict[str, list[ActorAddress]] = {}
        self._rng = rng if rng is not None else system.rng.stream("groups")
        self._rr: dict[str, int] = {}
        #: Membership mutations performed (the explicit-bookkeeping cost).
        self.membership_ops = 0
        self.sends = 0
        self.casts = 0

    # -- membership -----------------------------------------------------------

    def create_group(self, name: str) -> None:
        if name in self._groups:
            raise ValueError(f"group {name!r} already exists")
        self._groups[name] = []
        self._rr[name] = 0
        self.membership_ops += 1

    def delete_group(self, name: str) -> None:
        self._require(name)
        del self._groups[name]
        self._rr.pop(name, None)
        self.membership_ops += 1

    def join(self, name: str, member: ActorAddress) -> None:
        members = self._require(name)
        if member not in members:
            members.append(member)
        self.membership_ops += 1

    def leave(self, name: str, member: ActorAddress) -> None:
        members = self._require(name)
        try:
            members.remove(member)
        except ValueError:
            pass
        self.membership_ops += 1

    def members(self, name: str) -> list[ActorAddress]:
        return list(self._require(name))

    def _require(self, name: str) -> list[ActorAddress]:
        members = self._groups.get(name)
        if members is None:
            raise UnknownGroupError(f"no such group: {name}")
        return members

    # -- communication ------------------------------------------------------------

    def group_send(self, name: str, payload: Any, *, reply_to=None,
                   policy: str = "random") -> ActorAddress:
        """Deliver ``payload`` to one member; returns the chosen member.

        ``policy`` is ``"random"`` or ``"round-robin"`` (the local-server
        selection the V system used).  Raises :class:`EmptyGroupError` on
        an empty group — the fixed semantics the paper contrasts with
        manager-configurable suspension.
        """
        members = self._require(name)
        if not members:
            raise EmptyGroupError(f"group {name!r} is empty")
        if policy == "round-robin":
            choice = members[self._rr[name] % len(members)]
            self._rr[name] += 1
        else:
            choice = members[int(self._rng.integers(0, len(members)))]
        self.sends += 1
        self.system.send_to(choice, payload, reply_to=reply_to)
        return choice

    def group_cast(self, name: str, payload: Any, *, reply_to=None) -> int:
        """Deliver ``payload`` to every member; returns the member count."""
        members = self._require(name)
        if not members:
            raise EmptyGroupError(f"group {name!r} is empty")
        self.casts += 1
        for member in members:
            self.system.send_to(member, payload, reply_to=reply_to)
        return len(members)

    def __repr__(self):
        return (
            f"<GroupRegistry groups={len(self._groups)} "
            f"membership_ops={self.membership_ops}>"
        )
