"""NTP-style per-peer clock alignment for multi-node traces.

Each node process keeps wall-clock time as *elapsed seconds since its
own start* (:class:`~repro.net.runtime.WallClock`), so two nodes'
flight-recorder timestamps differ by an arbitrary offset — whatever the
gap between their process launches was.  Merging their event logs onto
one timeline therefore needs, per peer, an estimate of

``offset(peer) = peer_clock - local_clock``  (at the same real instant)

which is exactly the classic NTP client computation.  Every sample is a
four-timestamp exchange::

    t_send      local clock when the request left
    t_peer1     peer  clock when the request arrived
    t_peer2     peer  clock when the reply   left
    t_recv      local clock when the reply   arrived

    rtt    = (t_recv - t_send) - (t_peer2 - t_peer1)
    offset = ((t_peer1 - t_send) + (t_peer2 - t_recv)) / 2

The offset error is bounded by ``rtt / 2`` (the request/response legs
are assumed symmetric), so the *best* estimate is the sample with the
smallest round trip.  :class:`ClockSync` keeps a bounded window of
recent samples per peer and answers with the minimum-RTT one — a burst
of congested samples cannot evict one crisp measurement until it ages
out of the window.

Three producers feed it:

* the peer handshake — the dialer stamps ``t`` into HELLO and the
  acceptor echoes its own clock in WELCOME (``t_peer1 == t_peer2``);
* heartbeat echoes — each HEARTBEAT carries the sender's clock plus an
  echo of the last beacon received from the destination (``echo_t``)
  and the hold time between receiving it and replying (``echo_dt``),
  turning the periodic liveness beacons into free NTP exchanges;
* the telemetry collector — control-plane ``ping`` round trips, so the
  launcher can place every node's events on *its* timeline.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

#: How many recent samples to keep per peer; the min-RTT one answers.
SAMPLE_WINDOW = 32


class ClockSample:
    """One four-timestamp exchange, reduced to (offset, rtt)."""

    __slots__ = ("offset", "rtt", "at")

    def __init__(self, offset: float, rtt: float, at: float):
        self.offset = offset
        self.rtt = rtt
        self.at = at

    def __repr__(self):
        return f"<ClockSample offset={self.offset:+.6f} rtt={self.rtt:.6f}>"


class ClockSync:
    """Per-peer clock-offset estimation from timestamped round trips.

    Parameters
    ----------
    clock:
        The *local* timescale the caller's timestamps use.  A node
        passes its ``WallClock`` (elapsed seconds); the launcher-side
        telemetry collector uses ``time.monotonic``.  Only consistency
        matters: every ``t_send``/``t_recv`` handed to
        :meth:`add_sample` must come from this clock.
    window:
        Samples retained per peer (oldest evicted first).
    """

    def __init__(self, clock: Callable[[], float] | None = None,
                 window: int = SAMPLE_WINDOW):
        self.clock = clock if clock is not None else time.monotonic
        self.window = window
        self._samples: dict[int, deque[ClockSample]] = {}
        self.samples_total = 0
        self.samples_rejected = 0

    # -- recording ---------------------------------------------------------------

    def add_sample(self, peer: int, t_send: float, t_peer1: float,
                   t_peer2: float, t_recv: float) -> ClockSample | None:
        """Fold one exchange in; ``None`` if the timestamps are unusable.

        A sample is rejected when its computed round trip is negative
        (clock retrograde, a peer restart mid-exchange, or a stale echo)
        — a garbage sample must not displace a good one.
        """
        rtt = (t_recv - t_send) - (t_peer2 - t_peer1)
        if rtt < 0 or t_recv < t_send:
            self.samples_rejected += 1
            return None
        offset = ((t_peer1 - t_send) + (t_peer2 - t_recv)) / 2
        sample = ClockSample(offset, rtt, self.clock())
        bucket = self._samples.get(peer)
        if bucket is None:
            bucket = self._samples[peer] = deque(maxlen=self.window)
        bucket.append(sample)
        self.samples_total += 1
        return sample

    # -- queries -----------------------------------------------------------------

    def best(self, peer: int) -> ClockSample | None:
        """The minimum-RTT sample currently held for ``peer``."""
        bucket = self._samples.get(peer)
        if not bucket:
            return None
        return min(bucket, key=lambda s: s.rtt)

    def offset(self, peer: int) -> float | None:
        """``peer_clock - local_clock``, or ``None`` before any sample."""
        sample = self.best(peer)
        return sample.offset if sample is not None else None

    def rtt(self, peer: int) -> float | None:
        sample = self.best(peer)
        return sample.rtt if sample is not None else None

    def to_local(self, peer: int, t_peer: float) -> float:
        """Map a peer-clock instant onto the local timescale.

        Identity when no sample exists yet — an unaligned timestamp is
        more useful than a crash, and callers can consult
        :meth:`offset` to know whether alignment actually happened.
        """
        offset = self.offset(peer)
        if offset is None:
            return t_peer
        return t_peer - offset

    def peers(self) -> list[int]:
        return sorted(p for p, bucket in self._samples.items() if bucket)

    def snapshot(self) -> dict:
        """Wire-safe summary: per-peer best offset/rtt + sample counts."""
        peers = {}
        for peer in self.peers():
            sample = self.best(peer)
            peers[peer] = {
                "offset_s": sample.offset,
                "rtt_s": sample.rtt,
                "samples": len(self._samples[peer]),
            }
        return {
            "peers": peers,
            "samples_total": self.samples_total,
            "samples_rejected": self.samples_rejected,
        }

    def __repr__(self):
        return (f"<ClockSync peers={len(self.peers())} "
                f"samples={self.samples_total}>")
