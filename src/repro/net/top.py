"""Live cluster observability CLIs: ``repro top`` and ``repro trace --cluster``.

``python -m repro top`` attaches to a *running* cluster (via the
``cluster.json`` manifest a ``--out`` launch writes, or explicit
``--host``/``--ports``) and renders a refreshing per-node table: actor
and queue counts, wire-frame rates, shed/batch/heartbeat counters, the
node's clock offsets to its peers, plus the wire-path stage-latency
histograms (enqueue→flush, decode, deliver).  It is a read-only control
-plane client — attaching to a production cluster costs one extra
control connection per node and whatever the scrape interval implies.

``python -m repro trace --cluster`` is the batch sibling: pull telemetry
a few times, merge every node's flight-recorder events onto one
clock-aligned timeline, and export a Chrome ``trace_event`` file whose
flow arrows stitch cross-node sends to their deliveries.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.runtime.eventlog import validate_chrome_trace
from repro.util.tables import TextTable

from .cluster import ControlError, TelemetryCollector

#: ANSI: clear screen + home cursor (between live refreshes).
_CLEAR = "\x1b[2J\x1b[H"


def _collector_from_args(args) -> TelemetryCollector:
    if args.cluster_file:
        path = Path(args.cluster_file)
        if path.is_dir():
            path = path / "cluster.json"
        return TelemetryCollector.from_manifest(path, timeout=args.timeout)
    if not args.ports:
        raise SystemExit("need --cluster-file or --ports")
    ports = [int(p) for p in args.ports.split(",")]
    return TelemetryCollector(args.host, ports, cluster_id=args.cluster_id,
                              timeout=args.timeout)


def _ms(value) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return f"{value * 1000.0:.2f}"


def _admission_rejected(admission: dict | None) -> str:
    """Total admission rejections (rate + breaker), or ``-`` when off."""
    if not isinstance(admission, dict):
        return "-"
    return str(admission.get("rejected_rate", 0)
               + admission.get("rejected_breaker", 0))


def _peer_offsets(clock: dict | None) -> str:
    """Render a node's per-peer offset estimates as ``peer:+ms`` pairs."""
    if not isinstance(clock, dict) or not clock.get("peers"):
        return "-"
    parts = []
    for peer, info in sorted(clock["peers"].items()):
        offset = info.get("offset_s")
        if isinstance(offset, (int, float)):
            parts.append(f"{peer}:{offset * 1000.0:+.2f}ms")
    return ",".join(parts) if parts else "-"


def _shard_table(statuses: dict[int, dict],
                 prev_shards: dict[int, tuple[float, int]]) -> "TextTable | None":
    """Per-shard sequencer view, aggregated across every node's status.

    ``prev_shards`` maps shard -> (monotonic, total ops sequenced) from
    the previous refresh; the ops/s column is the delta.  Summing
    ``ops_sequenced`` over all nodes keeps the rate honest across a
    failover or rebalance — whichever node held the seat did the work.
    """
    per_shard: dict[int, list[dict]] = {}
    map_versions: set = set()
    for status in statuses.values():
        shards = status.get("shards") if isinstance(status, dict) else None
        if not shards:
            continue
        map_versions.add(status.get("shard_map_version"))
        for k, info in shards.items():
            per_shard.setdefault(int(k), []).append(info)
    if not per_shard:
        return None
    now = time.monotonic()
    versions = ",".join(str(v) for v in sorted(map_versions, key=str))
    table = TextTable(
        ["shard", "seat", "home", "ops/s", "seq'd", "applied", "lag",
         "unacked"],
        title=f"visibility shards ({len(per_shard)} shards, map v{versions})")
    for k in sorted(per_shard):
        views = per_shard[k]
        seats = {v.get("sequencer") for v in views}
        seat = seats.pop() if len(seats) == 1 else "split"
        homes = {v.get("home") for v in views}
        home = homes.pop() if len(homes) == 1 else "split"
        sequenced = sum(v.get("ops_sequenced", 0) or 0 for v in views)
        applied = [v.get("applied", 0) or 0 for v in views]
        rate = 0.0
        last = prev_shards.get(k)
        if last is not None and now > last[0]:
            rate = (sequenced - last[1]) / (now - last[0])
        prev_shards[k] = (now, sequenced)
        table.add_row([
            k, seat, home, f"{rate:.0f}", sequenced,
            max(applied), max(applied) - min(applied),
            sum(v.get("unacked", 0) or 0 for v in views),
        ])
    return table


def _render(collector: TelemetryCollector, statuses: dict[int, dict],
            prev: dict[int, tuple[float, int, int]],
            prev_shards: dict[int, tuple[float, int]]) -> str:
    """One refresh: the per-node table + the wire-stage histogram table.

    ``prev`` maps node -> (monotonic, frames_in, frames_out) from the
    previous refresh; frame rates are the deltas.  Updated in place.
    """
    now = time.monotonic()
    node_table = TextTable(
        ["node", "actors", "pend", "infl", "dlq", "links",
         "fr_in/s", "fr_out/s", "shed", "mb_shed", "adm_rej",
         "cr_stall", "b_in", "b_out", "hb_sup",
         "peak_kB", "peer offsets"],
        title=f"cluster: {collector.cluster_id}  "
              f"({len(collector.ports)} nodes, pull #{collector.pulls})")
    stage_table = TextTable(
        ["node", "stage", "count", "mean ms", "p50 ms", "p95 ms", "max ms"],
        title="wire path stage latency (enqueue->flush / decode / deliver)")
    for node in range(len(collector.ports)):
        status = statuses.get(node)
        snap = collector.snapshots.get(node) or {}
        hub = snap.get("hub") or {}
        if not isinstance(status, dict):
            node_table.add_row([node, "DOWN"] + ["-"] * 15)
            continue
        frames_in = hub.get("frames_in", 0) or 0
        frames_out = hub.get("frames_out", 0) or 0
        rate_in = rate_out = 0.0
        last = prev.get(node)
        if last is not None and now > last[0]:
            rate_in = (frames_in - last[1]) / (now - last[0])
            rate_out = (frames_out - last[2]) / (now - last[0])
        prev[node] = (now, frames_in, frames_out)
        peak = hub.get("queue_peak_bytes")
        node_table.add_row([
            node,
            status.get("actors", "-"),
            status.get("events_pending", "-"),
            status.get("in_flight", "-"),
            status.get("dlq_pending", "-"),
            len(status.get("links", [])),
            f"{rate_in:.0f}",
            f"{rate_out:.0f}",
            status.get("frames_shed", "-"),
            status.get("mailbox_shed", "-"),
            _admission_rejected(status.get("admission")),
            status.get("credit_stalls", "-"),
            status.get("batches_in", "-"),
            status.get("batches_out", "-"),
            status.get("heartbeats_suppressed", "-"),
            f"{peak / 1024:.1f}" if isinstance(peak, (int, float)) else "-",
            _peer_offsets(status.get("clock")),
        ])
        stages = hub.get("stage_latency") or {}
        for stage in ("send_queue", "decode", "deliver"):
            summary = stages.get(stage)
            if not isinstance(summary, dict):
                continue
            stage_table.add_row([
                node, stage, summary.get("count", 0),
                _ms(summary.get("mean")), _ms(summary.get("p50")),
                _ms(summary.get("p95")), _ms(summary.get("max")),
            ])
    parts = [node_table.render()]
    shard_table = _shard_table(statuses, prev_shards)
    if shard_table is not None:
        parts += ["", shard_table.render()]
    if stage_table.rows:
        parts += ["", stage_table.render()]
    return "\n".join(parts)


def top_main(argv: list[str]) -> int:
    """``python -m repro top`` — live per-node cluster table."""
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live telemetry view of a running TCP cluster.")
    parser.add_argument("--cluster-file", default=None,
                        help="cluster.json manifest (or the --out directory "
                             "that contains it)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--ports", default=None,
                        help="comma-separated node ports (alternative to "
                             "--cluster-file)")
    parser.add_argument("--cluster-id", default="actorspace")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N refreshes (0 = until interrupted)")
    parser.add_argument("--once", action="store_true",
                        help="render one snapshot and exit (no ANSI clear)")
    parser.add_argument("--timeout", type=float, default=3.0)
    args = parser.parse_args(argv)

    collector = _collector_from_args(args)
    prev: dict[int, tuple[float, int, int]] = {}
    prev_shards: dict[int, tuple[float, int]] = {}
    iterations = 1 if args.once else args.iterations
    count = 0
    try:
        while True:
            collector.pull()
            statuses: dict[int, dict] = {}
            for node in range(len(collector.ports)):
                try:
                    statuses[node] = collector._client(node).call("status")
                except (ControlError, OSError):
                    collector._drop_client(node)
            screen = _render(collector, statuses, prev, prev_shards)
            if args.once:
                print(screen)
            else:
                print(_CLEAR + screen, flush=True)
            count += 1
            if iterations and count >= iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        collector.close()


def cluster_trace_main(argv: list[str]) -> int:
    """``python -m repro trace --cluster`` — merged cross-node Chrome trace."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace --cluster",
        description="Merge a running cluster's flight recorders into one "
                    "clock-aligned Chrome trace.")
    parser.add_argument("--cluster-file", default=None,
                        help="cluster.json manifest (or its directory)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--ports", default=None)
    parser.add_argument("--cluster-id", default="actorspace")
    parser.add_argument("--out", default="cluster.trace.json")
    parser.add_argument("--pulls", type=int, default=3,
                        help="telemetry pulls before exporting (more pulls "
                             "= tighter clock estimates + more events)")
    parser.add_argument("--interval", type=float, default=0.2,
                        help="pause between pulls in seconds")
    parser.add_argument("--timeout", type=float, default=3.0)
    parser.add_argument("--verbose", action="store_true",
                        help="print the full per-node telemetry summary")
    args = parser.parse_args(argv)

    collector = _collector_from_args(args)
    try:
        for i in range(max(1, args.pulls)):
            collector.pull()
            if i + 1 < args.pulls:
                time.sleep(args.interval)
        merged = collector.merged_events()
        if not merged:
            print("trace: no events collected (is tracing enabled on the "
                  "cluster?)", file=sys.stderr)
            return 1
        trace = collector.export_chrome(args.out)
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems[:10]:
                print(f"trace: invalid output: {problem}", file=sys.stderr)
            return 1
        flows = sum(1 for r in trace["traceEvents"] if r.get("ph") == "f")
        nodes = sorted({e.node for e in merged})
        missed = sum(collector.events_missed.values())
        print(f"trace: {len(merged)} events from nodes {nodes} "
              f"({flows} flow bindings, {missed} evicted before pull) "
              f"-> {args.out}")
        if args.verbose:
            print(json.dumps(
                {str(n): s for n, s in collector.summary().items()},
                indent=2, default=str))
        else:
            print(f"clock: {collector.clock_sync.snapshot()['peers']}")
        return 0
    finally:
        collector.close()
