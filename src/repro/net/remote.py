"""The distribution seam: Transport, FailureDetector, and bus over TCP.

Three pieces make a node process a full ActorSpace replica:

* :class:`TcpTransport` — the existing
  :class:`~repro.runtime.transport.Transport` interface backed by real
  links.  Latency is real, so ``try_deliver`` answers 0.0 ("send now")
  or ``None`` ("cannot send"), and doubles as the failure detector's
  heartbeat oracle: probing *peer -> me* consults how recently the hub
  heard real bytes from the peer.  This is what lets the PR-3
  :class:`~repro.runtime.failure.FailureDetector` run unmodified — its
  suspect/confirm path is now driven by genuinely missed heartbeats.
* :class:`NetFailureDetector` — the simulator's detector narrowed to a
  single observer (this process's node); every process runs its own.
* :class:`RemoteSequencerBus` — the PR-3 sequencer protocol spoken in
  BUS_SUBMIT/BUS_OP/BUS_ACK/SYNC_REQ frames: submissions travel to the
  sequencer node (lowest live node id), get stamped into one global
  order with per-origin FIFO holdback, and fan out to every replica.
  On sequencer death each replica independently re-elects the lowest
  node it still believes live and re-drives its unacked submissions;
  dedup by (origin, origin_seq) keeps re-driven ops idempotent.  A
  recovering replica catches up by SYNC_REQ log replay.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.runtime.bus import BUS_PRIORITY, VisibilityOp
from repro.runtime.failure import FailureDetector
from repro.runtime.transport import Transport

from .codec import FrameKind

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import NodeRuntime


class TcpTransport(Transport):
    """Link liveness + heartbeat-recency oracle over the peer hub.

    The simulator's transports *decide* a latency and let the event queue
    enact it; over real sockets the latency just happens.  So this
    transport answers the two questions the runtime actually asks:

    * ``deliver_latency(me, dst)`` / ``try_deliver(me, dst)`` — may I
      route to ``dst`` right now?  ``NodeDownError`` / ``None`` when
      ``dst`` is confirmed down (terminal, feeds the dead-letter queue).
    * ``try_deliver(peer, me)`` — the detector's heartbeat probe:
      did real bytes from ``peer`` arrive within the recency window?
    """

    def __init__(self, runtime: "NodeRuntime", heartbeat_window: float):
        super().__init__()
        self.runtime = runtime
        #: How recently (wall seconds) a peer must have been heard for a
        #: heartbeat probe to succeed; > one heartbeat interval so a
        #: single delayed beacon is not a miss.
        self.heartbeat_window = heartbeat_window
        #: Nodes confirmed down by this process's detector.
        self.crashed: set[int] = set()
        #: Last HEARTBEAT received per peer: (peer clock stamp, local
        #: clock at receipt).  Echoed back in our next beacon so the
        #: peer can close an NTP-style four-timestamp exchange.
        self._hb_seen: dict[int, tuple[float, float]] = {}

    # -- heartbeat clock exchange ------------------------------------------------

    def on_heartbeat(self, src: int, payload) -> None:
        """Fold an inbound HEARTBEAT into the clock-offset estimate.

        Each beacon carries the sender's clock (``t``) plus an echo of
        the last beacon *we* sent it (``echo_t``, our clock when it
        left) and the hold time between receiving and echoing it
        (``echo_dt``).  That completes the four timestamps of one
        NTP-style sample — the periodic liveness traffic doubles as a
        free, continuously refreshing clock-sync stream.
        """
        if not isinstance(payload, dict):
            return
        t_peer = payload.get("t")
        if not isinstance(t_peer, (int, float)):
            return
        now = self.runtime.clock.now
        self._hb_seen[src] = (t_peer, now)
        echo_t = payload.get("echo_t")
        echo_dt = payload.get("echo_dt")
        if isinstance(echo_t, (int, float)) and isinstance(echo_dt, (int, float)):
            # Our beacon left at echo_t, reached the peer at
            # (t_peer - echo_dt) on its clock, and its reply left at
            # t_peer, arriving now.
            self.runtime.hub.clock_sync.add_sample(
                src, echo_t, t_peer - echo_dt, t_peer, now)

    def heartbeat_payload(self, dst: int) -> dict:
        """The beacon body for ``dst``: our clock + echo of its last one."""
        now = self.runtime.clock.now
        payload = {"node": self.runtime.node_id, "t": now}
        seen = self._hb_seen.get(dst)
        if seen is not None:
            t_peer, heard_at = seen
            payload["echo_t"] = t_peer
            payload["echo_dt"] = now - heard_at
        return payload

    def node_is_down(self, node: int) -> bool:
        return node in self.crashed

    def crash_node(self, node: int) -> None:
        self.crashed.add(node)

    def recover_node(self, node: int) -> None:
        self.crashed.discard(node)

    def recency(self, node: int) -> float | None:
        """Seconds since *any* frame arrived from ``node`` (None: never).

        This is the piggybacked-liveness oracle: every inbound frame —
        envelope, bus op, batch member — refreshes the hub's last-heard
        table, so a peer too busy to slot explicit HEARTBEATs into its
        write stream still reads as alive as long as its data flows.
        The sender-side complement lives in the runtime's heartbeat
        loop, which suppresses explicit beacons on links that carried
        data within the last interval.
        """
        heard_at = self.runtime.hub.last_heard.get(node)
        if heard_at is None:
            return None
        return time.monotonic() - heard_at

    def try_deliver(self, src_node: int, dst_node: int) -> float | None:
        self.attempts += 1
        me = self.runtime.node_id
        if dst_node == me and src_node != me:
            # Heartbeat probe: has src been heard within the window?
            since = self.recency(src_node)
            if since is None or since > self.heartbeat_window:
                self.drops += 1
                return None
            return 0.0
        if dst_node in self.crashed or src_node in self.crashed:
            self.drops += 1
            return None
        if dst_node != me and not self.runtime.hub.connected(dst_node):
            self.drops += 1
            return None
        return 0.0

    def deliver_latency(self, src_node: int, dst_node: int,
                        max_retries: int = 100) -> float:
        # Confirmed crashes are terminal, never retried (matches
        # NetworkTransport): the router turns this into a DLQ capture.
        if dst_node in self.crashed or src_node in self.crashed:
            self.attempts += 1
            self.drops += 1
            from repro.core.errors import NodeDownError

            down = dst_node if dst_node in self.crashed else src_node
            raise NodeDownError(f"node {down} is down")
        self.attempts += 1
        return 0.0

    def timeout_interval(self, src_node: int, dst_node: int) -> float:
        return self.heartbeat_window


class NetFailureDetector(FailureDetector):
    """The PR-3 detector with one real vantage point: this process.

    ``_tick`` runs on the node's wall-clock event pump; the heartbeat
    probe consults the hub's last-heard table through
    :meth:`TcpTransport.try_deliver`.  Suspicion and confirmation
    therefore reflect genuinely missing bytes, not a model.  Recovery is
    *not* detected here — a confirmed-down peer reads as down forever in
    the transport — the frame-receive path notices returning peers and
    calls ``runtime.on_peer_recovered`` instead.
    """

    def __init__(self, runtime: "NodeRuntime", interval: float = 0.2,
                 suspect_after: int = 2, confirm_after: int = 4):
        super().__init__(runtime, interval=interval,
                         suspect_after=suspect_after,
                         confirm_after=confirm_after)
        self.observers = [runtime.node_id]


class RemoteSequencerBus:
    """The sequencer total-order protocol over BUS_* frames.

    Mirrors :class:`~repro.runtime.bus.SequencerBus` state per process:
    the sequenced log (for SYNC_REQ state transfer), per-origin FIFO
    holdback (only exercised at the sequencer), the unacked-submission
    set (re-driven after failover), and dedup of re-driven ops by
    ``(origin_node, origin_seq)``.

    Origin-side callbacks (``on_applied``/``on_rejected``) cannot cross
    the wire; the origin keeps its local op object and substitutes it
    when the sequenced copy comes back, so apply-time validation still
    reports to the caller that issued the op.
    """

    FAILOVER_DELAY = 0.05

    def __init__(self, runtime: "NodeRuntime", shard_id: int = 0,
                 home_node: int | None = None):
        self.runtime = runtime
        self.nodes = list(runtime.nodes)
        #: Which visibility-plane shard this bus orders (0 = the whole
        #: plane when the node runs unsharded).
        self.shard_id = shard_id
        #: Preferred sequencer seat (the shard map's assignment).  The
        #: role sticks here while the node is live, falls back to the
        #: lowest live node during an outage, and returns on recovery —
        #: with the default (lowest node) this is exactly the historical
        #: lowest-live election.
        self.home_node = home_node if home_node is not None else min(self.nodes)
        self.sequencer_node = self.home_node
        #: The sequenced log: global seq -> op (SYNC_REQ replay source).
        self.log: dict[int, VisibilityOp] = {}
        self._next_seq = 0
        #: Highest seq present in ``log`` (watermark, so a freshly
        #: elected sequencer continues the order in O(1) instead of
        #: scanning the whole log on every sequenced op).
        self._log_high = -1
        #: Per-origin FIFO reassembly (sequencer role only).
        self._expected: dict[int, int] = {}
        self._holdback: dict[tuple[int, int], VisibilityOp] = {}
        #: Ops stamped into the global order, keyed by identity that
        #: survives re-drives: (origin_node, origin_seq).
        self._sequenced: set[tuple[int, int]] = set()
        #: Local submissions not yet seen in the global order.
        self._unacked: dict[int, VisibilityOp] = {}
        #: Local op objects (with callbacks), substituted on fan-in.
        self._local_ops: dict[int, VisibilityOp] = {}
        self._redrive_scheduled = False
        self._gap_sync_scheduled = False
        self.protocol_messages = 0
        self.ops_sequenced = 0
        self.failovers = 0
        #: Optional :class:`repro.store.NodeStore`: sequenced ops are
        #: persisted and committed *before* local delivery or fan-out
        #: (transactional outbox), on both the sequencer and replica
        #: paths, so a SIGKILL at any instant loses only unapplied ops.
        self.store = None

    # -- origin side -------------------------------------------------------------

    def submit(self, op: VisibilityOp) -> None:
        """Accept a local op for global ordering (never raises)."""
        self._local_ops[op.op_id] = op
        self._unacked[op.op_id] = op
        self._send_submit(op)

    def _send_submit(self, op: VisibilityOp) -> None:
        if (op.origin_node, op.origin_seq) in self._sequenced:
            return
        if self.sequencer_node == self.runtime.node_id:
            self._sequence(op)
            return
        self.protocol_messages += 1
        # An unreachable sequencer is fine: the op stays unacked and the
        # failover/reconnect paths re-drive it.  Sharded nodes route the
        # submission as SHARD_FWD — payload-bearing cross-shard traffic
        # that rides the credit-controlled data class on the wire.
        if self.runtime.shards > 1:
            self.runtime.hub.send(self.sequencer_node, FrameKind.SHARD_FWD,
                                  {"op": op, "shard": self.shard_id})
        else:
            self.runtime.hub.send(self.sequencer_node, FrameKind.BUS_SUBMIT,
                                  {"op": op})

    # -- sequencer side ----------------------------------------------------------

    def on_submit(self, from_node: int, op: VisibilityOp) -> None:
        """BUS_SUBMIT arrived; only meaningful if we are the sequencer."""
        if self.runtime.node_id != self.sequencer_node:
            # A stale submit aimed at a deposed sequencer; the origin
            # re-elects and re-drives on its own.
            return
        self.protocol_messages += 1
        self.runtime.hub.send(op.origin_node, FrameKind.BUS_ACK,
                              {"op_id": op.op_id})
        self._sequence(op)

    def _sequence(self, op: VisibilityOp) -> None:
        origin = op.origin_node
        if (origin, op.origin_seq) in self._sequenced:
            return  # duplicate of a re-driven op that already made it
        # A freshly elected sequencer continues the order after the
        # highest seq it has observed (its log mirrors the fan-out).
        self._next_seq = max(self._next_seq, self._log_high + 1)
        self._expected.setdefault(origin, 0)
        self._holdback[(origin, op.origin_seq)] = op
        while (origin, self._expected[origin]) in self._holdback:
            ready = self._holdback.pop((origin, self._expected[origin]))
            self._expected[origin] += 1
            seq = self._next_seq
            self._next_seq += 1
            self.ops_sequenced += 1
            self._sequenced.add((ready.origin_node, ready.origin_seq))
            self.log[seq] = ready
            self._log_high = max(self._log_high, seq)
            if self.store is not None:
                self.store.append_op(seq, ready)
                self.store.commit()
            event_log = self.runtime.event_log
            if event_log is not None and event_log.enabled:
                event_log.emit(
                    "bus_sequenced", self.runtime.clock.now,
                    self.runtime.node_id, None, global_seq=seq,
                    op=ready.kind.value, origin_node=ready.origin_node,
                    origin_seq=ready.origin_seq,
                )
            for node in self.nodes:
                if node == self.runtime.node_id:
                    self._deliver_local(seq, ready)
                else:
                    self.protocol_messages += 1
                    self.runtime.hub.send(node, FrameKind.BUS_OP,
                                          {"seq": seq, "op": ready,
                                           "shard": self.shard_id})

    # -- replica side ------------------------------------------------------------

    def on_op(self, seq: int, op: VisibilityOp) -> None:
        """A globally sequenced op arrived (fan-out or SYNC replay)."""
        first_sight = seq not in self.log
        self.log[seq] = op
        self._log_high = max(self._log_high, seq)
        if self.store is not None and first_sight:
            # Outbox on the replica path too: the op is durable here
            # before the coordinator applies it, so this replica's
            # recovery never depends on the sequencer's disk.
            self.store.append_op(seq, op)
            self.store.commit()
        self._sequenced.add((op.origin_node, op.origin_seq))
        self._expected[op.origin_node] = max(
            self._expected.get(op.origin_node, 0), op.origin_seq + 1)
        if op.origin_node == self.runtime.node_id:
            # Our own op echoed back — possibly from a *previous
            # incarnation* of this node (SYNC replay after a restart).
            # Continue origin numbering past it, or every op this
            # process mints would collide with a pre-crash (origin,
            # origin_seq) pair and be deduped into the void.
            coordinator = self.runtime.coordinator
            if coordinator.router is not None:
                floor = coordinator._origin_seqs.get(self.shard_id, 0)
                coordinator._origin_seqs[self.shard_id] = max(
                    floor, op.origin_seq + 1)
            else:
                coordinator._next_origin_seq = max(
                    coordinator._next_origin_seq, op.origin_seq + 1)
        self._deliver_local(seq, op)
        if self._applied_cursor() <= seq:
            # This op landed beyond the applied cursor: some earlier seq
            # is missing (lost frame, or fan-out raced a failover).  Ask
            # the sequencer to replay the hole after a debounce — the
            # stream self-heals instead of stalling at the gap forever.
            self._schedule_gap_sync()

    def on_ack(self, op_id: int) -> None:
        """Sequencer acknowledged receipt (advisory; dedup is by log)."""

    def _applied_cursor(self) -> int:
        """How far this replica has applied *this shard's* stream."""
        coordinator = self.runtime.coordinator
        if coordinator.router is not None:
            return coordinator._shard_cursors.get(self.shard_id, 0)
        return coordinator._next_apply_seq

    def _deliver_local(self, seq: int, op: VisibilityOp) -> None:
        local = self._local_ops.pop(op.op_id, None)
        self._unacked.pop(op.op_id, None)
        if seq < self._applied_cursor():
            return  # SYNC replay overlap: already applied here
        self.runtime.coordinator.on_bus_delivery(
            seq, local if local is not None else op)

    # -- state transfer ----------------------------------------------------------

    def restore_log(self, ops: dict[int, VisibilityOp]) -> None:
        """Rebuild bus state from persisted ops (recovery, pre-serve).

        Restores the log (so this node can serve SYNC_REQ and continue
        the order if elected sequencer), the dedup set, and the
        per-origin FIFO watermarks — without delivering anything: the
        caller replays ops into the coordinator separately.
        """
        for seq, op in ops.items():
            self.log.setdefault(seq, op)
            self._log_high = max(self._log_high, seq)
            self._sequenced.add((op.origin_node, op.origin_seq))
            self._expected[op.origin_node] = max(
                self._expected.get(op.origin_node, 0), op.origin_seq + 1)
        self._next_seq = max(self._next_seq, self._log_high + 1)

    def request_sync(self) -> None:
        """Ask the current sequencer to replay the log we have not applied."""
        if self.sequencer_node == self.runtime.node_id:
            return
        self.protocol_messages += 1
        self.runtime.hub.send(
            self.sequencer_node, FrameKind.SYNC_REQ,
            {"node": self.runtime.node_id,
             "from_seq": self._applied_cursor(),
             "shard": self.shard_id})

    def on_sync_req(self, node: int, from_seq: int, shard: int = 0) -> None:
        """Replay every logged op >= ``from_seq`` back to ``node``."""
        for seq in sorted(s for s in self.log if s >= from_seq):
            self.protocol_messages += 1
            self.runtime.hub.send(node, FrameKind.BUS_OP,
                                  {"seq": seq, "op": self.log[seq],
                                   "shard": self.shard_id})

    def on_peer_up(self, node: int) -> None:
        """A peer link registered; catch up if it holds our sequencer role."""
        if node == self.sequencer_node:
            self.request_sync()
        elif self.sequencer_node == self.runtime.node_id:
            # We hold the seat.  A (re)starting seat-holder must adopt
            # the existing stream before sequencing over it — otherwise
            # it would re-mint seq numbers replicas have already applied
            # and those ops would be silently skipped.  Every replica
            # mirrors the log, so the newly linked peer can serve the
            # replay; a current seat-holder gets an empty reply.
            self.protocol_messages += 1
            self.runtime.hub.send(node, FrameKind.SYNC_REQ,
                                  {"node": self.runtime.node_id,
                                   "from_seq": self._applied_cursor(),
                                   "shard": self.shard_id})

    # -- failover ----------------------------------------------------------------

    def live_nodes(self) -> list[int]:
        transport = self.runtime.transport
        return [n for n in self.nodes if not transport.node_is_down(n)]

    def on_node_down(self, node: int) -> None:
        if node == self.sequencer_node:
            self._elect("sequencer_down")
        elif self._unacked:
            self._schedule_redrive()

    def on_node_recovered(self, node: int) -> None:
        # Leadership follows "lowest live": a returning low node takes
        # the role back, and every replica converges on the same answer
        # because each re-evaluates against its own liveness view.
        self._elect("sequencer_recovered")

    def rebalance(self, node: int) -> None:
        """Move this shard's home seat to ``node`` and re-elect, live."""
        self.home_node = node
        self._elect("rebalance")
        if self._unacked:
            self._schedule_redrive()

    def _elect(self, reason: str) -> None:
        live = self.live_nodes()
        if not live:
            return
        new = self.home_node if self.home_node in live else min(live)
        if new != self.sequencer_node:
            self.sequencer_node = new
            self.failovers += 1
            tracer = self.runtime.tracer
            if tracer is not None:
                tracer.on_failover(node=new, t=self.runtime.clock.now,
                                   protocol="sequencer-tcp", reason=reason,
                                   new_leader=new)
        if self._unacked:
            self._schedule_redrive()

    def _schedule_redrive(self) -> None:
        if self._redrive_scheduled:
            return
        self._redrive_scheduled = True
        self.runtime.events.schedule(
            self.runtime.clock.now + self.FAILOVER_DELAY, self._redrive,
            priority=BUS_PRIORITY, tag=("bus_ctl",))

    def _redrive(self) -> None:
        self._redrive_scheduled = False
        for op in sorted(self._unacked.values(),
                         key=lambda o: (o.origin_node, o.origin_seq)):
            self._send_submit(op)

    def _schedule_gap_sync(self) -> None:
        if self._gap_sync_scheduled:
            return
        self._gap_sync_scheduled = True
        self.runtime.events.schedule(
            self.runtime.clock.now + self.FAILOVER_DELAY, self._gap_sync,
            priority=BUS_PRIORITY, tag=("bus_ctl",))

    def _gap_sync(self) -> None:
        self._gap_sync_scheduled = False
        if (self.sequencer_node == self.runtime.node_id
                or self._applied_cursor() > self._log_high):
            return  # gap closed (or we hold the seat: nothing to ask)
        self.request_sync()
        # Re-arm: the replay itself rides the wire and can be lost too.
        self._schedule_gap_sync()

    # -- introspection -----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        return {
            "shard": self.shard_id,
            "sequencer_node": self.sequencer_node,
            "home_node": self.home_node,
            "ops_sequenced": self.ops_sequenced,
            "protocol_messages": self.protocol_messages,
            "failovers": self.failovers,
            "log_length": len(self.log),
            "unacked": len(self._unacked),
        }

    def __repr__(self):
        return (f"<RemoteSequencerBus shard={self.shard_id} "
                f"@n{self.sequencer_node} "
                f"log={len(self.log)} unacked={len(self._unacked)}>")


class ShardedRemoteBus:
    """N per-shard :class:`RemoteSequencerBus` instances, one facade.

    The wire analogue of :class:`repro.shard.bus.ShardedBus`: frames
    carry the shard id (SHARD_FWD submissions, BUS_OP/SYNC_REQ payload
    keys), every shard elects and re-drives independently, and a
    recovering replica catches up per shard.  ``op.shard`` — stamped by
    the submitting coordinator's router — picks the inner bus.
    """

    def __init__(self, runtime: "NodeRuntime", shard_map):
        self.runtime = runtime
        self.map = shard_map
        self.shards: dict[int, RemoteSequencerBus] = {
            k: RemoteSequencerBus(runtime, shard_id=k,
                                  home_node=shard_map.sequencer_for(k))
            for k in range(shard_map.n_shards)
        }

    # -- frame dispatch ----------------------------------------------------------

    def submit(self, op: VisibilityOp) -> None:
        self.shards[op.shard].submit(op)

    def on_submit(self, from_node: int, op: VisibilityOp) -> None:
        self.shards[op.shard].on_submit(from_node, op)

    def on_op(self, seq: int, op: VisibilityOp) -> None:
        self.shards[op.shard].on_op(seq, op)

    def on_ack(self, op_id: int) -> None:
        pass  # advisory in the single-shard bus too

    def on_sync_req(self, node: int, from_seq: int, shard: int = 0) -> None:
        self.shards[shard].on_sync_req(node, from_seq)

    # -- liveness ----------------------------------------------------------------

    def on_node_down(self, node: int) -> None:
        for bus in self.shards.values():
            bus.on_node_down(node)

    def on_node_recovered(self, node: int) -> None:
        for bus in self.shards.values():
            bus.on_node_recovered(node)

    def on_peer_up(self, node: int) -> None:
        for bus in self.shards.values():
            bus.on_peer_up(node)

    def request_sync(self) -> None:
        for bus in self.shards.values():
            bus.request_sync()

    # -- rebalance ---------------------------------------------------------------

    def rebalance(self, shard: int, node: int) -> int:
        """Move ``shard``'s sequencer seat to ``node``; new map version."""
        self.shards[shard].rebalance(node)
        return self.map.assign(shard, node)

    def apply_map(self, manifest: dict) -> bool:
        """Adopt a gossiped shard map if its version is newer."""
        if not self.map.apply_if_newer(manifest):
            return False
        for k, bus in self.shards.items():
            seat = self.map.sequencer_for(k)
            if seat != bus.home_node:
                bus.rebalance(seat)
        return True

    # -- introspection -----------------------------------------------------------

    def sequencer_nodes(self) -> dict[int, int]:
        return {k: b.sequencer_node for k, b in self.shards.items()}

    def metrics_snapshot(self) -> dict:
        return {
            "shards": {k: b.metrics_snapshot()
                       for k, b in sorted(self.shards.items())},
            "map_version": self.map.version,
            "ops_sequenced": sum(b.ops_sequenced
                                 for b in self.shards.values()),
            "protocol_messages": sum(b.protocol_messages
                                     for b in self.shards.values()),
            "failovers": sum(b.failovers for b in self.shards.values()),
            "unacked": sum(len(b._unacked) for b in self.shards.values()),
        }

    def __repr__(self):
        seats = ",".join(f"{k}@n{b.sequencer_node}"
                         for k, b in sorted(self.shards.items()))
        return f"<ShardedRemoteBus {seats}>"
