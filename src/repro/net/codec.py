"""Wire codec: deterministic binary serialization + length-prefixed frames.

Everything that crosses a socket between two node processes goes through
this module: envelopes and their messages, patterns, attribute paths,
mail addresses, capability tokens, visibility ops, bus protocol payloads,
heartbeats, and control requests.

Design rules
------------
* **Deterministic** — encoding the same value always yields the same
  bytes.  Sets are sorted by their encoded form, dict insertion order is
  preserved (both sides use the same construction order), floats are
  IEEE-754 big-endian.  Determinism is what lets the conformance sweep
  compare a TCP cluster against the single-process oracle byte-for-byte.
* **Versioned** — every connection handshake carries
  (:data:`PROTOCOL_VERSION`, :data:`SCHEMA_VERSION`).  The protocol
  version covers framing; the schema version covers the tag table below.
  A peer that disagrees on either is rejected before any payload flows.
* **Closed-world** — only the tag table below is decodable.  Unknown
  Python objects raise :class:`WireError` at *encode* time (never pickle,
  never eval), and unknown tags raise at decode time.  Application
  payload types opt in explicitly via :func:`register_wire_type`.

Frame layout: ``u32 length | u8 frame-kind | body`` where ``length``
counts the kind byte plus the body.  Frames above :data:`MAX_FRAME_BYTES`
are refused on both sides (a corrupt length prefix must not make a
receiver allocate gigabytes).

Value layout: one tag byte followed by tag-specific content.  Containers
nest recursively.  Integers are arbitrary-precision (length-prefixed
big-endian two's complement), so envelope ids rebased to ``node << 44``
and 128-bit capability tokens ride the same path.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import Any, Callable

from repro.core.addresses import ActorAddress, MailAddress, SpaceAddress
from repro.core.atoms import AttributePath
from repro.core.capabilities import Capability
from repro.core.messages import Destination, Envelope, Message, Mode, Port
from repro.core.patterns import Pattern, parse_pattern
from repro.runtime.bus import OpKind, VisibilityOp

PROTOCOL_VERSION = 5  # v5: sharded visibility plane (SHARD_FWD, shard ids)
SCHEMA_VERSION = 2    # v2: VisibilityOp carries shard / tick / fan_of

#: Hard ceiling on a single frame (length prefix included payload).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Handshake magic: the first field of every HELLO payload.
WIRE_MAGIC = "actorspace"

_U8 = struct.Struct("!B")
_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")


class WireError(Exception):
    """Raised on any encode/decode failure (unknown type, corrupt bytes)."""


class FrameKind(enum.IntEnum):
    """Every frame that may appear on a node-to-node or control link."""

    HELLO = 1        #: handshake request: versions + identity
    WELCOME = 2      #: handshake accepted
    REJECT = 3       #: handshake refused (version/cluster mismatch)
    BYE = 4          #: graceful drain: no more frames will follow
    HEARTBEAT = 5    #: liveness beacon, feeds the failure detector
    ENVELOPE = 6     #: a routed application envelope
    BUS_SUBMIT = 7   #: origin -> sequencer: order this visibility op
    BUS_OP = 8       #: sequencer -> all: globally sequenced visibility op
    BUS_ACK = 9      #: sequencer -> origin: submission received
    SYNC_REQ = 10    #: recovering node -> sequencer: replay log from seq
    CONTROL = 11     #: launcher -> node: control-plane request
    REPLY = 12       #: node -> launcher: control-plane response
    BATCH = 13       #: N coalesced frames in one length-prefixed envelope
    CREDIT = 14      #: receiver -> sender: data-frame flow-control grant
    SHARD_FWD = 15   #: cross-shard routed envelope (credit-controlled data)


# -- enum index tables (wire-stable: append-only) -------------------------------

_MODES = (Mode.DIRECT, Mode.SEND, Mode.BROADCAST)
_PORTS = (Port.BEHAVIOR, Port.INVOCATION, Port.RPC)
_OP_KINDS = (
    OpKind.ADD_SPACE,
    OpKind.DESTROY_SPACE,
    OpKind.MAKE_VISIBLE,
    OpKind.MAKE_INVISIBLE,
    OpKind.CHANGE_ATTRIBUTES,
    OpKind.BIND_CAPABILITY,
    OpKind.PURGE,
)
_MODE_INDEX = {m: i for i, m in enumerate(_MODES)}
_PORT_INDEX = {p: i for i, p in enumerate(_PORTS)}
_OP_KIND_INDEX = {k: i for i, k in enumerate(_OP_KINDS)}


# -- registries -----------------------------------------------------------------

#: Application dataclasses allowed in payloads, by wire name.
_WIRE_TYPES: dict[str, type] = {}
_WIRE_TYPE_NAMES: dict[type, str] = {}

#: Space-manager factories referenced by ADD_SPACE ops, by wire name.
_MANAGER_FACTORIES: dict[str, Callable] = {}
_MANAGER_FACTORY_NAMES: dict[Callable, str] = {}


def register_wire_type(cls: type, name: str | None = None) -> type:
    """Allow instances of dataclass ``cls`` inside wire payloads.

    The registration must happen on *both* sides of the connection (node
    processes and the launcher import the same registry module, so this
    is automatic for shipped behaviors).  Returns ``cls`` so it can be
    used as a decorator.
    """
    if not dataclasses.is_dataclass(cls):
        raise WireError(f"wire types must be dataclasses: {cls!r}")
    wire_name = name or cls.__name__
    existing = _WIRE_TYPES.get(wire_name)
    if existing is not None and existing is not cls:
        raise WireError(f"wire type name {wire_name!r} already registered")
    _WIRE_TYPES[wire_name] = cls
    _WIRE_TYPE_NAMES[cls] = wire_name
    return cls


def register_manager_factory(name: str, factory: Callable) -> None:
    """Name a space-manager factory so ADD_SPACE ops can reference it."""
    _MANAGER_FACTORIES[name] = factory
    _MANAGER_FACTORY_NAMES[factory] = name


def _register_default_factories() -> None:
    from repro.core.manager import SpaceManager, default_manager

    register_manager_factory("default", default_manager)
    register_manager_factory("space-manager", SpaceManager)


_register_default_factories()


# -- value encoding -------------------------------------------------------------

def _enc_int(out: bytearray, value: int) -> None:
    data = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
    out += _U32.pack(len(data))
    out += data


def _enc_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    out += _U32.pack(len(data))
    out += data


def _enc_float(out: bytearray, obj: float) -> None:
    out += b"f"
    out += _F64.pack(obj)


def _enc_text(out: bytearray, obj: str) -> None:
    out += b"s"
    _enc_str(out, obj)


def _enc_bytes(out: bytearray, obj: bytes) -> None:
    out += b"y"
    out += _U32.pack(len(obj))
    out += obj


def _enc_list(out: bytearray, obj: list) -> None:
    out += b"l"
    out += _U32.pack(len(obj))
    for item in obj:
        _enc(out, item)


def _enc_tuple(out: bytearray, obj: tuple) -> None:
    out += b"t"
    out += _U32.pack(len(obj))
    for item in obj:
        _enc(out, item)


def _enc_set(out: bytearray, obj: "set | frozenset") -> None:
    # Deterministic: members sorted by their own encoding.
    out += b"S"
    encoded = sorted(encode_value(item) for item in obj)
    out += _U32.pack(len(encoded))
    for item in encoded:
        out += item


def _enc_dict(out: bytearray, obj: dict) -> None:
    out += b"d"
    out += _U32.pack(len(obj))
    for key, value in obj.items():
        _enc(out, key)
        _enc(out, value)


def _enc_space_address(out: bytearray, obj: SpaceAddress) -> None:
    out += b"z"
    _enc_int(out, obj.node)
    _enc_int(out, obj.serial)


def _enc_actor_address(out: bytearray, obj: ActorAddress) -> None:
    out += b"a"
    _enc_int(out, obj.node)
    _enc_int(out, obj.serial)


def _enc_attribute_path(out: bytearray, obj: AttributePath) -> None:
    out += b"p"
    out += _U32.pack(len(obj.atoms))
    for atom in obj.atoms:
        _enc_str(out, atom)


def _enc_pattern(out: bytearray, obj: Pattern) -> None:
    # Canonical text form; ``parse_pattern(str(p)) == p`` by design.
    out += b"P"
    _enc_str(out, str(obj))


def _enc_destination(out: bytearray, obj: Destination) -> None:
    out += b"D"
    _enc(out, obj.pattern)
    _enc(out, obj.space)


def _enc_capability(out: bytearray, obj: Capability) -> None:
    out += b"c"
    out += obj.token.to_bytes(16, "big")


def _enc_message(out: bytearray, obj: Message) -> None:
    out += b"M"
    _enc(out, obj.payload)
    _enc(out, obj.reply_to)
    _enc(out, obj.headers)
    _enc_int(out, obj.message_id)


def _enc_envelope(out: bytearray, obj: Envelope) -> None:
    out += b"E"
    _enc(out, obj.message)
    _enc(out, obj.sender)
    out += _U8.pack(_MODE_INDEX[obj.mode])
    _enc(out, obj.target)
    _enc(out, obj.destination)
    out += _U8.pack(_PORT_INDEX[obj.port])
    out += _F64.pack(obj.sent_at)
    _enc(out, obj.delivered_at)
    out += _U32.pack(len(obj.trace))
    for hop in obj.trace:
        _enc_int(out, hop)
    _enc(out, obj.origin_space)
    _enc_int(out, obj.envelope_id)
    _enc_int(out, obj.trace_id)
    _enc(out, obj.parent_id)


def _enc_visibility_op(out: bytearray, obj: VisibilityOp) -> None:
    out += b"O"
    out += _U8.pack(_OP_KIND_INDEX[obj.kind])
    _enc_int(out, obj.origin_node)
    _enc_int(out, obj.origin_seq)
    _enc_int(out, obj.op_id)
    _enc_int(out, obj.shard)
    _enc(out, obj.tick)
    _enc(out, obj.fan_of)
    _enc(out, obj.args)


def _enc_tagged_int(out: bytearray, obj: int) -> None:
    out += b"i"
    _enc_int(out, obj)


#: Exact-type fast dispatch for the hot path.  ``bool`` is absent on
#: purpose (True/False are identity-checked in :func:`_enc`), and enum
#: ``int`` subclasses never hit the ``int`` entry because dispatch is by
#: ``type(obj)``, not ``isinstance`` — subclasses and registered
#: dataclasses fall through to :func:`_enc_other`.
_ENC_BY_TYPE: dict[type, Callable] = {
    int: _enc_tagged_int,
    float: _enc_float,
    str: _enc_text,
    bytes: _enc_bytes,
    bytearray: _enc_bytes,
    list: _enc_list,
    tuple: _enc_tuple,
    set: _enc_set,
    frozenset: _enc_set,
    dict: _enc_dict,
    SpaceAddress: _enc_space_address,
    ActorAddress: _enc_actor_address,
    AttributePath: _enc_attribute_path,
    Destination: _enc_destination,
    Capability: _enc_capability,
    Message: _enc_message,
    Envelope: _enc_envelope,
    VisibilityOp: _enc_visibility_op,
    Pattern: _enc_pattern,
}


def _enc(out: bytearray, obj: Any) -> None:
    if obj is None:
        out += b"N"
        return
    if obj is True:
        out += b"T"
        return
    if obj is False:
        out += b"F"
        return
    handler = _ENC_BY_TYPE.get(type(obj))
    if handler is not None:
        handler(out, obj)
        return
    _enc_other(out, obj)


def _enc_other(out: bytearray, obj: Any) -> None:
    """Slow path: subclasses, patterns, and late-registered wire types."""
    if isinstance(obj, int) and not isinstance(obj, enum.Enum):
        _enc_tagged_int(out, obj)
    elif isinstance(obj, float):
        _enc_float(out, obj)
    elif isinstance(obj, str):
        _enc_text(out, obj)
    elif isinstance(obj, (bytes, bytearray)):
        _enc_bytes(out, obj)
    elif isinstance(obj, list):
        _enc_list(out, obj)
    elif isinstance(obj, tuple):
        _enc_tuple(out, obj)
    elif isinstance(obj, (set, frozenset)):
        _enc_set(out, obj)
    elif isinstance(obj, dict):
        _enc_dict(out, obj)
    elif isinstance(obj, SpaceAddress):
        _enc_space_address(out, obj)
    elif isinstance(obj, ActorAddress):
        _enc_actor_address(out, obj)
    elif isinstance(obj, AttributePath):
        _enc_attribute_path(out, obj)
    elif isinstance(obj, Pattern):
        _enc_pattern(out, obj)
    elif isinstance(obj, Destination):
        _enc_destination(out, obj)
    elif isinstance(obj, Capability):
        _enc_capability(out, obj)
    elif isinstance(obj, Message):
        _enc_message(out, obj)
    elif isinstance(obj, Envelope):
        _enc_envelope(out, obj)
    elif isinstance(obj, VisibilityOp):
        _enc_visibility_op(out, obj)
    elif callable(obj) and obj in _MANAGER_FACTORY_NAMES:
        out += b"g"
        _enc_str(out, _MANAGER_FACTORY_NAMES[obj])
    elif type(obj) in _WIRE_TYPE_NAMES:
        out += b"X"
        _enc_str(out, _WIRE_TYPE_NAMES[type(obj)])
        fields = dataclasses.fields(obj)
        out += _U32.pack(len(fields))
        for f in fields:
            _enc_str(out, f.name)
            _enc(out, getattr(obj, f.name))
    else:
        raise WireError(
            f"type not encodable for the wire: {type(obj).__name__} "
            f"({obj!r}); register it with register_wire_type()"
        )


def encode_value(obj: Any) -> bytes:
    """Encode one value to its deterministic byte form."""
    out = bytearray()
    _enc(out, obj)
    return bytes(out)


# -- value decoding -------------------------------------------------------------

def _need(buf: bytes, pos: int, count: int) -> None:
    if pos + count > len(buf):
        raise WireError(f"truncated value: need {count} bytes at offset {pos}")


def _dec_u32(buf: bytes, pos: int) -> tuple[int, int]:
    if pos + 4 > len(buf):
        raise WireError(f"truncated value: need 4 bytes at offset {pos}")
    return _U32.unpack_from(buf, pos)[0], pos + 4


def _dec_int(buf: bytes, pos: int) -> tuple[int, int]:
    body = pos + 4
    if body > len(buf):
        raise WireError(f"truncated value: need 4 bytes at offset {pos}")
    end = body + _U32.unpack_from(buf, pos)[0]
    if end > len(buf):
        raise WireError(f"truncated value: need {end - body} bytes "
                        f"at offset {body}")
    return int.from_bytes(buf[body:end], "big", signed=True), end


def _dec_str(buf: bytes, pos: int) -> tuple[str, int]:
    body = pos + 4
    if body > len(buf):
        raise WireError(f"truncated value: need 4 bytes at offset {pos}")
    end = body + _U32.unpack_from(buf, pos)[0]
    if end > len(buf):
        raise WireError(f"truncated value: need {end - body} bytes "
                        f"at offset {body}")
    try:
        return buf[body:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise WireError(f"invalid utf-8 in string at offset {body}") from exc


def _dec_enum(buf: bytes, pos: int, table: tuple, what: str):
    _need(buf, pos, 1)
    index = buf[pos]
    if index >= len(table):
        raise WireError(f"unknown {what} index {index}")
    return table[index], pos + 1


def _dec_none(buf: bytes, pos: int) -> tuple[None, int]:
    return None, pos


def _dec_true(buf: bytes, pos: int) -> tuple[bool, int]:
    return True, pos


def _dec_false(buf: bytes, pos: int) -> tuple[bool, int]:
    return False, pos


def _dec_float(buf: bytes, pos: int) -> tuple[float, int]:
    _need(buf, pos, 8)
    return _F64.unpack_from(buf, pos)[0], pos + 8


def _dec_bytes(buf: bytes, pos: int) -> tuple[bytes, int]:
    length, pos = _dec_u32(buf, pos)
    _need(buf, pos, length)
    return bytes(buf[pos:pos + length]), pos + length


def _dec_list(buf: bytes, pos: int) -> tuple[list, int]:
    count, pos = _dec_u32(buf, pos)
    items = []
    for _ in range(count):
        item, pos = _dec(buf, pos)
        items.append(item)
    return items, pos


def _dec_tuple(buf: bytes, pos: int) -> tuple[tuple, int]:
    items, pos = _dec_list(buf, pos)
    return tuple(items), pos


def _dec_set(buf: bytes, pos: int) -> tuple[frozenset, int]:
    members, pos = _dec_list(buf, pos)
    return frozenset(members), pos


def _dec_dict(buf: bytes, pos: int) -> tuple[dict, int]:
    count, pos = _dec_u32(buf, pos)
    result = {}
    for _ in range(count):
        key, pos = _dec(buf, pos)
        value, pos = _dec(buf, pos)
        result[key] = value
    return result, pos


def _dec_actor_address(buf: bytes, pos: int) -> tuple[ActorAddress, int]:
    node, pos = _dec_int(buf, pos)
    serial, pos = _dec_int(buf, pos)
    return ActorAddress(node, serial), pos


def _dec_space_address(buf: bytes, pos: int) -> tuple[SpaceAddress, int]:
    node, pos = _dec_int(buf, pos)
    serial, pos = _dec_int(buf, pos)
    return SpaceAddress(node, serial), pos


def _dec_attribute_path(buf: bytes, pos: int) -> tuple[AttributePath, int]:
    count, pos = _dec_u32(buf, pos)
    atoms = []
    for _ in range(count):
        atom, pos = _dec_str(buf, pos)
        atoms.append(atom)
    return AttributePath(atoms), pos


def _dec_pattern(buf: bytes, pos: int) -> tuple[Pattern, int]:
    text, pos = _dec_str(buf, pos)
    try:
        return parse_pattern(text), pos
    except Exception as exc:
        raise WireError(f"invalid pattern on wire: {text!r}") from exc


def _dec_destination(buf: bytes, pos: int) -> tuple[Destination, int]:
    pattern, pos = _dec(buf, pos)
    space, pos = _dec(buf, pos)
    destination = Destination.__new__(Destination)
    destination.pattern = pattern
    destination.space = space
    return destination, pos


def _dec_capability(buf: bytes, pos: int) -> tuple[Capability, int]:
    _need(buf, pos, 16)
    token = int.from_bytes(buf[pos:pos + 16], "big")
    return Capability(token), pos + 16


def _dec_message(buf: bytes, pos: int) -> tuple[Message, int]:
    payload, pos = _dec(buf, pos)
    reply_to, pos = _dec(buf, pos)
    headers, pos = _dec(buf, pos)
    message_id, pos = _dec_int(buf, pos)
    return Message(payload, reply_to=reply_to, headers=headers,
                   message_id=message_id), pos


def _dec_envelope(buf: bytes, pos: int) -> tuple[Envelope, int]:
    message, pos = _dec(buf, pos)
    sender, pos = _dec(buf, pos)
    mode, pos = _dec_enum(buf, pos, _MODES, "mode")
    target, pos = _dec(buf, pos)
    destination, pos = _dec(buf, pos)
    port, pos = _dec_enum(buf, pos, _PORTS, "port")
    _need(buf, pos, 8)
    sent_at = _F64.unpack_from(buf, pos)[0]
    pos += 8
    delivered_at, pos = _dec(buf, pos)
    hop_count, pos = _dec_u32(buf, pos)
    trace = []
    for _ in range(hop_count):
        hop, pos = _dec_int(buf, pos)
        trace.append(hop)
    origin_space, pos = _dec(buf, pos)
    envelope_id, pos = _dec_int(buf, pos)
    trace_id, pos = _dec_int(buf, pos)
    parent_id, pos = _dec(buf, pos)
    return Envelope(
        message=message, sender=sender, mode=mode, target=target,
        destination=destination, port=port, sent_at=sent_at,
        delivered_at=delivered_at, trace=trace, origin_space=origin_space,
        envelope_id=envelope_id, trace_id=trace_id, parent_id=parent_id,
    ), pos


def _dec_visibility_op(buf: bytes, pos: int) -> tuple[VisibilityOp, int]:
    kind, pos = _dec_enum(buf, pos, _OP_KINDS, "op kind")
    origin_node, pos = _dec_int(buf, pos)
    origin_seq, pos = _dec_int(buf, pos)
    op_id, pos = _dec_int(buf, pos)
    shard, pos = _dec_int(buf, pos)
    tick, pos = _dec(buf, pos)
    fan_of, pos = _dec(buf, pos)
    args, pos = _dec(buf, pos)
    return VisibilityOp(kind=kind, args=args, origin_node=origin_node,
                        origin_seq=origin_seq, op_id=op_id, shard=shard,
                        tick=tick, fan_of=fan_of), pos


def _dec_manager_factory(buf: bytes, pos: int) -> tuple[Callable, int]:
    name, pos = _dec_str(buf, pos)
    factory = _MANAGER_FACTORIES.get(name)
    if factory is None:
        raise WireError(f"unknown manager factory on wire: {name!r}")
    return factory, pos


def _dec_wire_type(buf: bytes, pos: int) -> tuple[Any, int]:
    name, pos = _dec_str(buf, pos)
    cls = _WIRE_TYPES.get(name)
    if cls is None:
        raise WireError(f"unknown wire type: {name!r}")
    field_count, pos = _dec_u32(buf, pos)
    kwargs = {}
    for _ in range(field_count):
        field_name, pos = _dec_str(buf, pos)
        value, pos = _dec(buf, pos)
        kwargs[field_name] = value
    try:
        return cls(**kwargs), pos
    except TypeError as exc:
        raise WireError(f"wire type {name!r} rejected fields: {exc}") from exc


#: Tag byte -> decoder; the mirror of :data:`_ENC_BY_TYPE`.  Keyed on the
#: integer byte so dispatch is one dict probe instead of a comparison
#: chain — the codec sits on the per-envelope hot path of every link.
_DEC_BY_TAG: dict[int, Callable] = {
    ord("N"): _dec_none,
    ord("T"): _dec_true,
    ord("F"): _dec_false,
    ord("i"): _dec_int,
    ord("f"): _dec_float,
    ord("s"): _dec_str,
    ord("y"): _dec_bytes,
    ord("l"): _dec_list,
    ord("t"): _dec_tuple,
    ord("S"): _dec_set,
    ord("d"): _dec_dict,
    ord("a"): _dec_actor_address,
    ord("z"): _dec_space_address,
    ord("p"): _dec_attribute_path,
    ord("P"): _dec_pattern,
    ord("D"): _dec_destination,
    ord("c"): _dec_capability,
    ord("M"): _dec_message,
    ord("E"): _dec_envelope,
    ord("O"): _dec_visibility_op,
    ord("g"): _dec_manager_factory,
    ord("X"): _dec_wire_type,
}


def _dec(buf: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(buf):
        raise WireError(f"truncated value: need 1 bytes at offset {pos}")
    handler = _DEC_BY_TAG.get(buf[pos])
    if handler is None:
        raise WireError(f"unknown wire tag {buf[pos:pos + 1]!r} at offset {pos}")
    return handler(buf, pos + 1)


def decode_value(data: bytes) -> Any:
    """Decode one value; the buffer must contain exactly one value."""
    value, pos = _dec(data, 0)
    if pos != len(data):
        raise WireError(f"trailing garbage after value: {len(data) - pos} bytes")
    return value


# -- framing --------------------------------------------------------------------

def encode_frame_into(out: bytearray, kind: FrameKind, payload: Any = None) -> int:
    """Append one frame to ``out`` in a single pass; return its byte size.

    The length prefix is reserved up front and backpatched after the
    body is encoded, so the hot path never materializes the body as a
    separate ``bytes`` object — callers reuse one growing ``bytearray``
    across many frames (the send queue's coalescing buffer).
    """
    if kind == FrameKind.BATCH:
        raise WireError("BATCH frames are built with wrap_batch(), "
                        "not encode_frame()")
    start = len(out)
    out += b"\x00\x00\x00\x00"  # length placeholder, backpatched below
    out += _U8.pack(int(kind))
    _enc(out, payload)
    length = len(out) - start - 4
    if length > MAX_FRAME_BYTES:
        del out[start:]
        raise WireError(f"frame too large: {length} > {MAX_FRAME_BYTES}")
    _U32.pack_into(out, start, length)
    return length + 4


def encode_frame(kind: FrameKind, payload: Any = None) -> bytes:
    """One complete frame: ``u32 length | u8 kind | encoded payload``."""
    out = bytearray()
    encode_frame_into(out, kind, payload)
    return bytes(out)


def wrap_batch(chunks: list[bytes]) -> bytes:
    """Coalesce already-encoded frames into one BATCH frame.

    Layout: ``u32 length | u8 BATCH | u32 count | frame*`` where each
    inner frame keeps its ordinary ``u32 length | u8 kind | body`` form,
    so the sender just concatenates bytes it already has (no re-encode)
    and the receiver walks the same frame parser over the body.  Inner
    BATCH frames are refused on both sides: one level of nesting only.
    """
    if not chunks:
        raise WireError("empty batch")
    total = 1 + 4 + sum(len(c) for c in chunks)
    if total > MAX_FRAME_BYTES:
        raise WireError(f"batch too large: {total} > {MAX_FRAME_BYTES}")
    out = bytearray(_U32.pack(total))
    out += _U8.pack(int(FrameKind.BATCH))
    out += _U32.pack(len(chunks))
    for chunk in chunks:
        if chunk[4:5] == _BATCH_KIND_BYTE:
            raise WireError("nested BATCH frames are not allowed")
        out += chunk
    return bytes(out)


_BATCH_KIND_BYTE = bytes([13])


def _decode_batch_body(buf: bytes, offset: int,
                       end: int) -> list[tuple["FrameKind", Any]]:
    """Parse the inner frames of a BATCH frame body (``buf[offset:end]``)."""
    count = _U32.unpack_from(buf, offset)[0]
    offset += 4
    frames: list[tuple[FrameKind, Any]] = []
    for _ in range(count):
        decoded = try_decode_frame(buf, offset, end=end)
        if decoded is None:
            raise WireError("truncated frame inside batch")
        kind, payload, consumed = decoded
        if kind == FrameKind.BATCH:
            raise WireError("nested BATCH frames are not allowed")
        frames.append((kind, payload))
        offset += consumed
    if offset != end:
        raise WireError(f"trailing garbage in batch: {end - offset} bytes")
    return frames


def try_decode_frame(buf: bytes, offset: int = 0, *,
                     end: int | None = None) -> tuple[FrameKind, Any, int] | None:
    """Decode one frame from ``buf[offset:end]``.

    Returns ``(kind, payload, bytes_consumed)`` or ``None`` when the
    buffer does not yet hold a complete frame.  For BATCH frames the
    payload is the list of inner ``(kind, payload)`` pairs, in order.
    Raises :class:`WireError` on an oversized length prefix or corrupt
    body — callers must drop the connection, since stream sync is lost.
    """
    if end is None:
        end = len(buf)
    if end - offset < 4:
        return None
    length = _U32.unpack_from(buf, offset)[0]
    if length > MAX_FRAME_BYTES:
        raise WireError(f"incoming frame too large: {length} bytes")
    if length < 1:
        raise WireError("incoming frame has empty body")
    if end - offset < 4 + length:
        return None
    kind_byte = buf[offset + 4]
    try:
        kind = FrameKind(kind_byte)
    except ValueError as exc:
        raise WireError(f"unknown frame kind {kind_byte}") from exc
    if kind == FrameKind.BATCH:
        if length < 5:
            raise WireError("batch frame too short for its count")
        inner = _decode_batch_body(buf, offset + 5, offset + 4 + length)
        return kind, inner, 4 + length
    body = bytes(buf[offset + 5:offset + 4 + length])
    return kind, decode_value(body), 4 + length


class FrameDecoder:
    """Incremental frame reassembly over a byte stream.

    BATCH frames are expanded transparently: ``feed`` returns the inner
    frames in their original order, so consumers never see the batching
    layer (``batches_in`` counts how many arrived, for telemetry).
    """

    __slots__ = ("_buffer", "batches_in")

    def __init__(self):
        self._buffer = bytearray()
        self.batches_in = 0

    def feed(self, data: bytes) -> list[tuple[FrameKind, Any]]:
        """Absorb ``data``; return every frame completed by it, in order."""
        self._buffer += data
        frames: list[tuple[FrameKind, Any]] = []
        offset = 0
        while True:
            decoded = try_decode_frame(self._buffer, offset)
            if decoded is None:
                break
            kind, payload, consumed = decoded
            if kind == FrameKind.BATCH:
                self.batches_in += 1
                frames.extend(payload)
            else:
                frames.append((kind, payload))
            offset += consumed
        if offset:
            del self._buffer[:offset]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


# -- handshake ------------------------------------------------------------------

def hello_payload(node: int, role: str, cluster_id: str,
                  t: float | None = None) -> dict:
    """The HELLO body a connecting peer announces itself with.

    ``t`` is the dialer's wall clock at send time; the acceptor echoes
    its own clock in WELCOME, turning the handshake round trip into the
    first NTP-style sample for :class:`~repro.net.clocksync.ClockSync`.
    """
    payload = {
        "magic": WIRE_MAGIC,
        "protocol": PROTOCOL_VERSION,
        "schema": SCHEMA_VERSION,
        "node": node,
        "role": role,
        "cluster": cluster_id,
    }
    if t is not None:
        payload["t"] = t
    return payload


def hello_problem(payload: Any, cluster_id: str) -> str | None:
    """Validate a HELLO body; a string describes why it must be rejected."""
    if not isinstance(payload, dict):
        return "handshake payload is not a mapping"
    if payload.get("magic") != WIRE_MAGIC:
        return "bad magic (not an actorspace peer)"
    if payload.get("protocol") != PROTOCOL_VERSION:
        return (f"protocol version mismatch: theirs="
                f"{payload.get('protocol')!r} ours={PROTOCOL_VERSION}")
    if payload.get("schema") != SCHEMA_VERSION:
        return (f"schema version mismatch: theirs="
                f"{payload.get('schema')!r} ours={SCHEMA_VERSION}")
    if payload.get("cluster") != cluster_id:
        return (f"cluster id mismatch: theirs={payload.get('cluster')!r} "
                f"ours={cluster_id!r}")
    if not isinstance(payload.get("node"), int):
        return "missing node id"
    if payload.get("role") not in ("node", "control"):
        return f"unknown role {payload.get('role')!r}"
    return None
