"""Peer links: one asyncio TCP server + per-peer dialers per node process.

Each node process runs a :class:`PeerHub`.  The hub listens on the node's
own port, dials every other node, and keeps exactly one *registered* link
per peer node id (whichever handshake completed most recently wins — with
both sides dialing, two TCP connections per pair may exist; frames are
accepted from either, sends go out on the registered one).

Handshake: the connecting side writes a HELLO frame carrying
(protocol version, schema version, node id, role, cluster id).  The
accepting side validates and answers WELCOME — or REJECT with a reason,
then closes.  A version- or cluster-mismatched peer never gets past this
point, so the codec can assume both ends share one schema.

Reconnect: each dialer loops forever with capped exponential backoff
(reset after a successful handshake), because in an open system peers
come and go — a node process restarting must be re-adopted without any
operator action.

Drain: :meth:`PeerHub.stop` sends BYE on every live link, flushes the
write buffers, and only then closes — a graceful shutdown must not strand
frames in userspace buffers.

Throughput: sends never touch the socket directly.  Each link owns a
FIFO send queue and a flusher task that drains it, coalescing whatever
is queued into one ``writer.write`` (wrapped in a single BATCH frame
when more than one frame is pending) and honoring asyncio's write
backpressure via ``drain()`` between writes.  The flush policy is
three-trigger: queue-empty (write whatever accumulated while the last
write drained), size (cut a batch at ``batch_max_bytes``), and time (an
optional ``flush_delay`` lingers briefly to coalesce sparse traffic).
The queue itself is bounded: once ``max_pending_bytes`` of frames are
waiting (a peer stalled mid-``drain``), further sends are *shed* and
counted — a frozen peer must cost bounded memory, not the process.

Overload protection (two mechanisms, one per direction of causality):

* **Control/data queue split.**  Each link keeps *two* FIFO queues.
  Payload-bearing frames (envelopes, bus submissions and fan-out,
  cross-shard forwards) ride the big ``max_pending_bytes``-bounded
  queue; everything else — heartbeats, control replies,
  credit grants — rides a small separate queue with its own
  ``ctrl_pending_bytes`` budget that data saturation cannot consume.
  Before the split, a saturated link shed heartbeats along with data,
  so a live-but-stalled peer went fully silent and its receiver falsely
  suspected it.  The flusher always drains control ahead of data.
* **Credit-based flow control.**  A receiver grants the sender a window
  of ``credit_window`` data frames at link registration and tops it up
  with CREDIT frames as it consumes (every ``credit_window // 2``
  envelopes).  The flusher stops writing data frames when the window is
  exhausted — the sender *pauses* (frames wait in the bounded queue)
  instead of blind-shedding into a receiver that cannot keep up.
  Control frames are never credit-gated, so grants and liveness flow
  even while data is stalled.  ``credit_window=0`` disables gating.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Callable

from repro.runtime.metrics import MetricsRegistry

from .clocksync import ClockSync
from .codec import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameKind,
    WireError,
    encode_frame,
    hello_payload,
    hello_problem,
    wrap_batch,
)

#: Cap on the dialer's exponential backoff between reconnect attempts.
RECONNECT_MAX = 2.0
RECONNECT_BASE = 0.05

#: Cut a coalesced write once this many payload bytes are gathered.
BATCH_MAX_BYTES = 256 * 1024
#: Bound on *data* frames queued behind a non-draining link before shedding.
MAX_PENDING_BYTES = 4 * 1024 * 1024
#: Separate shed-exempt budget for control/liveness frames: data
#: saturation must never silence heartbeats or credit grants.  Control
#: frames are small; a backlog this deep means the socket itself is
#: wedged, at which point suspicion is correct.
CTRL_PENDING_BYTES = 256 * 1024
#: Data frames a receiver lets a sender keep in flight before the
#: sender's flusher pauses; replenished by CREDIT grants at half-window.
CREDIT_WINDOW_FRAMES = 1024
#: asyncio transport write-buffer high watermark (drain() blocks above).
WRITE_HIGH_WATER = 256 * 1024

#: Frame kinds subject to the data bound + credit gating; everything
#: else is control-class (shed-exempt budget, never credit-gated).
#: Alongside envelopes, the bus replication stream (BUS_SUBMIT
#: submissions, BUS_OP fan-out and sync replay) and SHARD_FWD
#: cross-shard forwards are payload-bearing, unbounded-volume traffic:
#: they must get backpressure from the big credit-gated queue, not
#: overflow the small control budget and shed — a shed BUS_OP is a hole
#: in a replica's log.  Heartbeats and grants keep their own lane.
_DATA_KINDS = frozenset({FrameKind.ENVELOPE, FrameKind.SHARD_FWD,
                         FrameKind.BUS_SUBMIT, FrameKind.BUS_OP})


class PeerLink:
    """One live, handshake-complete connection to a peer.

    Owns the per-link send state: the FIFO queue of already-encoded
    frames, its byte total, the event its flusher sleeps on, and the
    shed counter.  FIFO queue + single flusher is what makes batching
    order-preserving within a link.
    """

    __slots__ = ("node", "role", "reader", "writer", "opened_at",
                 "queue", "queue_bytes", "ctrl_queue", "ctrl_bytes",
                 "wake", "frames_shed", "credit_stalled", "closing")

    def __init__(self, node: int, role: str,
                 reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.node = node
        self.role = role
        self.reader = reader
        self.writer = writer
        self.opened_at = time.monotonic()
        #: Data-frame FIFO of (encoded frame, perf_counter at enqueue) —
        #: the second element times the enqueue->flush wire-path stage.
        self.queue: deque[tuple[bytes, float]] = deque()
        self.queue_bytes = 0
        #: Control/liveness FIFO with its own shed-exempt budget; the
        #: flusher drains it ahead of data and never credit-gates it.
        self.ctrl_queue: deque[tuple[bytes, float]] = deque()
        self.ctrl_bytes = 0
        self.wake = asyncio.Event()
        self.frames_shed = 0
        #: Flusher is currently paused on an exhausted credit window
        #: (edge flag so the stall counter counts episodes, not polls).
        self.credit_stalled = False
        self.closing = False

    def __repr__(self):
        return f"<PeerLink {self.role}:{self.node}>"


class PeerHub:
    """The per-process connection manager (see module docstring).

    Parameters
    ----------
    node_id:
        This node's id.
    ports:
        ``{node_id: tcp_port}`` for every node in the cluster, this one
        included (the hub listens on ``ports[node_id]``).
    on_frame:
        ``(src_node, kind, payload, link)`` callback for every decoded
        frame from a handshake-complete link.  Runs on the event loop;
        exceptions are logged and the offending connection dropped.
    on_peer_up:
        Optional ``(node)`` callback when a *node* link registers.
    on_peer_lost:
        Optional ``(node)`` callback when a registered node link dies.
    """

    def __init__(
        self,
        node_id: int,
        ports: dict[int, int],
        on_frame: Callable[[int, FrameKind, Any, PeerLink], None],
        *,
        host: str = "127.0.0.1",
        cluster_id: str = "actorspace",
        on_peer_up: Callable[[int], None] | None = None,
        on_peer_lost: Callable[[int], None] | None = None,
        log: Callable[[str], None] | None = None,
        batch_max_bytes: int = BATCH_MAX_BYTES,
        max_pending_bytes: int = MAX_PENDING_BYTES,
        ctrl_pending_bytes: int = CTRL_PENDING_BYTES,
        credit_window: int = CREDIT_WINDOW_FRAMES,
        flush_delay: float = 0.0,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.node_id = node_id
        self.ports = dict(ports)
        self.host = host
        self.cluster_id = cluster_id
        self.on_frame = on_frame
        self.on_peer_up = on_peer_up
        self.on_peer_lost = on_peer_lost
        self._log = log or (lambda text: None)
        self.batch_max_bytes = batch_max_bytes
        self.max_pending_bytes = max_pending_bytes
        self.ctrl_pending_bytes = ctrl_pending_bytes
        #: Data frames a peer may have in flight to us before pausing;
        #: 0 disables credit gating entirely.
        self.credit_window = credit_window
        self.flush_delay = flush_delay
        #: The node's wall clock (elapsed seconds); handshake/heartbeat
        #: timestamps and the per-peer offset estimates live on it.
        self.clock = clock if clock is not None else time.monotonic
        self.clock_sync = ClockSync(clock=self.clock)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Wire-path stage timers (seconds, perf_counter deltas).
        self.h_send_queue = self.metrics.histogram("wire_send_queue_s", cap=4096)
        self.h_decode = self.metrics.histogram("wire_decode_s", cap=4096)
        self.h_deliver = self.metrics.histogram("wire_deliver_s", cap=4096)
        #: Registered node links: peer node id -> live link.
        self.links: dict[int, PeerLink] = {}
        #: Wall-clock (monotonic) instant we last received any frame from
        #: each peer node; the TcpTransport's heartbeat oracle reads this.
        self.last_heard: dict[int, float] = {}
        #: Monotonic instant we last queued any frame *to* each peer node;
        #: the runtime suppresses explicit heartbeats while data flows
        #: (the peer's oracle counts those frames as liveness already).
        self.last_sent: dict[int, float] = {}
        self.frames_in = 0
        self.frames_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.writes = 0
        self.batches_out = 0
        self.batches_in = 0
        self.frames_shed = 0
        #: High-water mark of any single link's data send queue, in bytes
        #: — how close the run came to the shed bound.
        self.queue_peak_bytes = 0
        self.handshakes_rejected = 0
        self.reconnects = 0
        #: Credit flow control: remaining data-frame window per peer node
        #: (what *we* may still send), envelopes consumed since our last
        #: grant to each peer, and the episode/grant counters.
        self.data_credit: dict[int, int] = {}
        self.data_consumed: dict[int, int] = {}
        self.credit_stalls = 0
        self.credit_grants_in = 0
        self.credit_grants_out = 0
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self._running = False

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start dialing every other node."""
        self._running = True
        self._server = await asyncio.start_server(
            self._on_inbound, self.host, self.ports[self.node_id]
        )
        for peer in sorted(self.ports):
            if peer != self.node_id:
                self._spawn(self._dial_loop(peer))

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: flush queues, BYE on every link, then close."""
        self._running = False
        if drain:
            for link in list(self.links.values()):
                try:
                    # Let the flusher empty the send queue first so BYE
                    # stays the last frame on the stream, then write it
                    # directly (the flusher may already be gone).
                    await self._drain_link(link, timeout=1.0)
                    link.closing = True
                    link.wake.set()
                    link.writer.write(encode_frame(FrameKind.BYE, None))
                    await asyncio.wait_for(link.writer.drain(), timeout=1.0)
                except (OSError, asyncio.TimeoutError):
                    pass
        for link in list(self.links.values()):
            link.closing = True
            link.wake.set()
            link.writer.close()
        self.links.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    def _spawn(self, coro) -> None:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- sending ----------------------------------------------------------------

    def connected(self, node: int) -> bool:
        """Is there a registered, live link to ``node`` right now?"""
        return node in self.links

    def send(self, node: int, kind: FrameKind, payload: Any = None) -> bool:
        """Queue one frame to peer ``node``; False when no link is up.

        Frames go to the link's send queue and are coalesced onto the
        socket by its flusher; a peer that dies with frames in flight
        simply loses them — exactly the at-most-once link behavior the
        dead-letter queue exists to compensate.  A link whose queue is
        over ``max_pending_bytes`` (stalled peer) sheds the frame and
        answers False, same as no link at all.
        """
        link = self.links.get(node)
        if link is None:
            return False
        return self.send_link(link, kind, payload)

    def send_link(self, link: PeerLink, kind: FrameKind, payload: Any = None) -> bool:
        """Queue one frame on an explicit link (control replies)."""
        try:
            data = encode_frame(kind, payload)
        except WireError as exc:
            self._log(f"send to {link!r} failed: {exc}")
            return False
        return self._enqueue(link, data, kind in _DATA_KINDS)

    def broadcast(self, kind: FrameKind, payload: Any = None,
                  exclude: tuple = ()) -> int:
        """Send one frame to every registered node link; returns count.

        The frame is encoded exactly once; every link queues the same
        bytes object (the frame body is identical per peer by design).
        """
        targets = [self.links[node] for node in sorted(self.links)
                   if node not in exclude]
        if not targets:
            return 0
        try:
            data = encode_frame(kind, payload)
        except WireError as exc:
            self._log(f"broadcast encode failed: {exc}")
            return 0
        is_data = kind in _DATA_KINDS
        return sum(1 for link in targets if self._enqueue(link, data, is_data))

    def _enqueue(self, link: PeerLink, data: bytes, is_data: bool = True) -> bool:
        """FIFO-queue encoded bytes on ``link``; shed when over the bound.

        Data frames ride the big ``max_pending_bytes`` queue; control
        frames ride the separate shed-exempt-from-data budget, so a
        saturated data queue can never silence liveness or credit.
        ``last_sent`` is deliberately *not* touched here — a frame that
        only made it into a userspace queue proves nothing to the peer's
        liveness oracle; the flusher records it after the actual write.
        """
        if link.closing or link.writer.is_closing():
            return False
        budget = self.max_pending_bytes if is_data else self.ctrl_pending_bytes
        used = link.queue_bytes if is_data else link.ctrl_bytes
        if used + len(data) > budget:
            link.frames_shed += 1
            self.frames_shed += 1
            return False
        if is_data:
            link.queue.append((data, time.perf_counter()))
            link.queue_bytes += len(data)
            if link.queue_bytes > self.queue_peak_bytes:
                self.queue_peak_bytes = link.queue_bytes
        else:
            link.ctrl_queue.append((data, time.perf_counter()))
            link.ctrl_bytes += len(data)
        link.wake.set()
        self.frames_out += 1
        self.bytes_out += len(data)
        return True

    def idle_peers(self, window: float) -> list[int]:
        """Node links with no outbound frame within ``window`` seconds.

        The heartbeat loop beacons only these: a peer we are actively
        sending data to refreshes its recency oracle with every frame,
        so an explicit HEARTBEAT would be pure overhead on a busy link.
        """
        now = time.monotonic()
        return [node for node in sorted(self.links)
                if now - self.last_sent.get(node, 0.0) >= window]

    # -- flushing ----------------------------------------------------------------

    def _next_chunks(self, link: PeerLink) -> list[bytes]:
        """Pop the next coalesced write off ``link``: control ahead of data.

        Control frames always flow; data frames are additionally gated
        by the peer's remaining credit window (node links only).  An
        empty return with data still queued means the flusher should go
        back to sleep — a CREDIT grant will wake it.
        """
        now = time.perf_counter()
        chunks: list[bytes] = []
        size = 0
        while link.ctrl_queue and size < self.batch_max_bytes:
            nxt, t_enq = link.ctrl_queue[0]
            if chunks and size + len(nxt) + 9 > MAX_FRAME_BYTES:
                return chunks  # batch header + chunks must stay a legal frame
            link.ctrl_queue.popleft()
            link.ctrl_bytes -= len(nxt)
            self.h_send_queue.observe(now - t_enq)
            chunks.append(nxt)
            size += len(nxt)
        gated = self.credit_window > 0 and link.role == "node"
        avail = self.data_credit.get(link.node, self.credit_window) \
            if gated else -1
        taken = 0
        while link.queue and size < self.batch_max_bytes \
                and (avail < 0 or taken < avail):
            nxt, t_enq = link.queue[0]
            if chunks and size + len(nxt) + 9 > MAX_FRAME_BYTES:
                break
            link.queue.popleft()
            link.queue_bytes -= len(nxt)
            self.h_send_queue.observe(now - t_enq)
            chunks.append(nxt)
            size += len(nxt)
            taken += 1
        if gated:
            if taken:
                self.data_credit[link.node] = avail - taken
            # Edge-count stall episodes: data waiting, window exhausted.
            stalled = bool(link.queue) and (avail - taken) <= 0
            if stalled and not link.credit_stalled:
                self.credit_stalls += 1
                self._log(f"credit stall on {link.node}: "
                          f"{len(link.queue)} data frames waiting")
            link.credit_stalled = stalled
        return chunks

    async def _flush_loop(self, link: PeerLink) -> None:
        """Drain ``link``'s send queues until it closes (one task per link).

        Coalesces every queued frame into as few writes as possible:
        runs of more than one frame travel as a single BATCH frame.
        ``drain()`` between writes is the backpressure seam — while a
        slow peer keeps it blocked, frames accumulate in the queue (and
        are shed past ``max_pending_bytes``), not in the transport.
        Control frames always go first; data stops when the credit
        window is exhausted and resumes when a CREDIT grant wakes us.
        """
        try:
            while True:
                await link.wake.wait()
                link.wake.clear()
                if self.flush_delay > 0 and not link.closing \
                        and link.queue_bytes + link.ctrl_bytes < self.batch_max_bytes:
                    # Time trigger: linger to coalesce sparse traffic.
                    await asyncio.sleep(self.flush_delay)
                while True:
                    chunks = self._next_chunks(link)
                    if not chunks:
                        break
                    if len(chunks) == 1:
                        link.writer.write(chunks[0])
                    else:
                        link.writer.write(wrap_batch(chunks))
                        self.batches_out += 1
                    self.writes += 1
                    if link.role == "node":
                        # Liveness is a wire fact: record the send only
                        # once bytes actually left for the socket.
                        self.last_sent[link.node] = time.monotonic()
                    await link.writer.drain()
                if link.closing:
                    return
        except (OSError, WireError, RuntimeError, asyncio.CancelledError) as exc:
            # Connection died mid-flush (or shutdown); the serve loop
            # owns unregistration and close.
            if not isinstance(exc, asyncio.CancelledError):
                self._log(f"flusher for {link!r} died: {exc!r}")

    async def _drain_link(self, link: PeerLink, timeout: float = 1.0) -> None:
        """Wait (bounded) until ``link``'s queue and transport are empty."""
        deadline = time.monotonic() + timeout
        while (link.queue or link.ctrl_queue) and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        try:
            await asyncio.wait_for(link.writer.drain(),
                                   timeout=max(deadline - time.monotonic(), 0.05))
        except (OSError, asyncio.TimeoutError):
            pass

    # -- inbound connections ----------------------------------------------------

    async def _on_inbound(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """Server side of the handshake: validate HELLO, WELCOME, serve."""
        decoder = FrameDecoder()
        pending: deque = deque()
        try:
            frame = await asyncio.wait_for(
                self._read_one(reader, decoder, pending), timeout=5.0)
        except (asyncio.TimeoutError, WireError, OSError, asyncio.IncompleteReadError):
            writer.close()
            return
        if frame is None or frame[0] != FrameKind.HELLO:
            writer.close()
            return
        problem = hello_problem(frame[1], self.cluster_id)
        if problem is not None:
            self.handshakes_rejected += 1
            self._log(f"rejected inbound handshake: {problem}")
            try:
                writer.write(encode_frame(FrameKind.REJECT, {"reason": problem}))
                await writer.drain()
            except OSError:
                pass
            writer.close()
            return
        peer, role = frame[1]["node"], frame[1]["role"]
        try:
            writer.write(encode_frame(
                FrameKind.WELCOME,
                {"node": self.node_id, "t": self.clock()}))
            await writer.drain()
        except OSError:
            writer.close()
            return
        link = PeerLink(peer, role, reader, writer)
        if role == "node":
            self._register(link)
        await self._serve_link(link, decoder, pending)

    # -- outbound connections ---------------------------------------------------

    async def _dial_loop(self, peer: int) -> None:
        """Connect to ``peer`` forever, with capped exponential backoff."""
        backoff = RECONNECT_BASE
        while self._running:
            dialed = None
            try:
                dialed = await self._dial_once(peer)
            except (OSError, asyncio.TimeoutError, WireError, ConnectionError,
                    asyncio.IncompleteReadError):
                dialed = None
            if dialed is not None:
                # Keep the handshake decoder AND any frames already
                # buffered behind the WELCOME: the peer registers this
                # link the instant it accepts, so real traffic can share
                # a TCP segment with the handshake reply.  A fresh
                # decoder here silently ate those frames.
                link, decoder, pending = dialed
                backoff = RECONNECT_BASE
                self._register(link)
                await self._serve_link(link, decoder, pending)
                if self._running:
                    self.reconnects += 1
            if not self._running:
                return
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2, RECONNECT_MAX)

    async def _dial_once(
        self, peer: int,
    ) -> tuple[PeerLink, FrameDecoder, deque] | None:
        """One connect + handshake attempt; None on rejection.

        Returns the link *plus* the handshake decoder and any frames that
        arrived bundled with the WELCOME, so the serve loop never drops
        bytes the peer sent the instant it registered us.
        """
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.ports[peer]), timeout=2.0)
        t_send = self.clock()
        writer.write(encode_frame(
            FrameKind.HELLO,
            hello_payload(self.node_id, "node", self.cluster_id, t=t_send)))
        await writer.drain()
        decoder = FrameDecoder()
        pending: deque = deque()
        frame = await asyncio.wait_for(
            self._read_one(reader, decoder, pending), timeout=5.0)
        t_recv = self.clock()
        if frame is None or frame[0] != FrameKind.WELCOME:
            reason = frame[1].get("reason") if frame and isinstance(frame[1], dict) else "closed"
            self.handshakes_rejected += 1
            self._log(f"dial to node {peer} rejected: {reason}")
            writer.close()
            return None
        # The WELCOME echoes the acceptor's clock: one NTP-style sample
        # per (re)connect, before any application traffic flows.
        t_peer = frame[1].get("t") if isinstance(frame[1], dict) else None
        if isinstance(t_peer, (int, float)):
            self.clock_sync.add_sample(peer, t_send, t_peer, t_peer, t_recv)
        return PeerLink(peer, "node", reader, writer), decoder, pending

    # -- shared serving ---------------------------------------------------------

    async def _read_one(self, reader: asyncio.StreamReader,
                        decoder: FrameDecoder,
                        pending: deque) -> tuple[FrameKind, Any] | None:
        """Read until one complete frame is available (handshake phase).

        Any frames decoded beyond the first are pushed onto ``pending``
        for the serve loop — a peer may pipeline traffic right behind its
        handshake frame, and those bytes must not be discarded.
        """
        while True:
            if pending:
                return pending.popleft()
            data = await reader.read(65536)
            if not data:
                return None
            self.bytes_in += len(data)
            pending.extend(decoder.feed(data))

    async def _serve_link(self, link: PeerLink, decoder: FrameDecoder,
                          pending: deque | None = None) -> None:
        """Pump frames off ``link`` until it dies or BYE arrives."""
        pending = pending if pending is not None else deque()
        try:
            link.writer.transport.set_write_buffer_limits(
                high=WRITE_HIGH_WATER)
        except (AttributeError, RuntimeError):  # pragma: no cover - exotic transports
            pass
        flusher = asyncio.ensure_future(self._flush_loop(link))
        self._tasks.add(flusher)
        flusher.add_done_callback(self._tasks.discard)
        batches_seen = decoder.batches_in
        try:
            while True:
                goodbye = False
                while pending:
                    kind, payload = pending.popleft()
                    self.frames_in += 1
                    if link.role == "node":
                        self.last_heard[link.node] = time.monotonic()
                    if kind == FrameKind.BYE:
                        goodbye = True
                        break
                    if kind == FrameKind.CREDIT:
                        # Flow-control grants are link-layer traffic:
                        # top up the window and wake the flusher; the
                        # runtime never sees them.
                        self._on_credit(link, payload)
                        continue
                    t0 = time.perf_counter()
                    try:
                        self.on_frame(link.node, kind, payload, link)
                    except Exception as exc:  # noqa: BLE001 - isolate handlers
                        self._log(f"frame handler failed on {kind.name} "
                                  f"from {link!r}: {exc!r}")
                    self.h_deliver.observe(time.perf_counter() - t0)
                    if kind in _DATA_KINDS and link.role == "node":
                        # Grant-back must mirror the sender's spend: the
                        # flusher debits credit for every data-class
                        # frame, so SHARD_FWD consumption replenishes
                        # the window exactly like ENVELOPE does.
                        self._note_consumed(link.node)
                if goodbye:
                    break
                data = await link.reader.read(65536)
                if not data:
                    break
                self.bytes_in += len(data)
                try:
                    t0 = time.perf_counter()
                    pending.extend(decoder.feed(data))
                    self.h_decode.observe(time.perf_counter() - t0)
                except WireError as exc:
                    self._log(f"corrupt stream from {link!r}: {exc}")
                    break
                if decoder.batches_in != batches_seen:
                    self.batches_in += decoder.batches_in - batches_seen
                    batches_seen = decoder.batches_in
        except (OSError, asyncio.CancelledError):
            pass
        finally:
            link.closing = True
            link.wake.set()
            flusher.cancel()
            self._unregister(link)
            link.writer.close()

    # -- credit flow control ----------------------------------------------------

    def _on_credit(self, link: PeerLink, payload: Any) -> None:
        """A peer granted us more data-frame window; wake its flusher."""
        n = payload.get("n", 0) if isinstance(payload, dict) else 0
        if link.role != "node" or not isinstance(n, int) or n <= 0:
            return
        self.credit_grants_in += 1
        node = link.node
        # Cap at the full window so post-reconnect double-grants cannot
        # inflate the window; drift self-heals toward ``credit_window``.
        self.data_credit[node] = min(
            self.credit_window, self.data_credit.get(node, self.credit_window) + n)
        registered = self.links.get(node)
        if registered is not None:
            registered.wake.set()

    def _note_consumed(self, node: int) -> None:
        """Count one consumed envelope; grant credit back at half-window."""
        if self.credit_window <= 0:
            return
        consumed = self.data_consumed.get(node, 0) + 1
        if consumed >= max(1, self.credit_window // 2) \
                and self.send(node, FrameKind.CREDIT, {"n": consumed}):
            self.credit_grants_out += 1
            consumed = 0
        self.data_consumed[node] = consumed

    # -- link registry ----------------------------------------------------------

    def _register(self, link: PeerLink) -> None:
        previous = self.links.get(link.node)
        self.links[link.node] = link
        if previous is not None and previous is not link:
            # A duplicate connection won the registration race (late
            # simultaneous dial).  Frames still queued on the losing
            # link would be orphaned — credit grants wake only the
            # *registered* link, so its flusher would sleep on a stalled
            # window forever.  Migrate the backlog, retire the loser.
            link.queue.extend(previous.queue)
            link.queue_bytes += previous.queue_bytes
            link.ctrl_queue.extend(previous.ctrl_queue)
            link.ctrl_bytes += previous.ctrl_bytes
            previous.queue.clear()
            previous.queue_bytes = 0
            previous.ctrl_queue.clear()
            previous.ctrl_bytes = 0
            previous.closing = True
            previous.wake.set()
            link.wake.set()
        self.last_heard[link.node] = time.monotonic()
        # The handshake frames just crossed the wire, so the peer's
        # recency oracle is fresh as of now (last_sent is otherwise
        # only advanced by the flusher, after real writes).
        self.last_sent[link.node] = time.monotonic()
        if self.credit_window > 0:
            # Fresh link, fresh window on both sides: sender restarts
            # with a full grant, receiver restarts its consumed count.
            self.data_credit[link.node] = self.credit_window
            self.data_consumed[link.node] = 0
        if previous is None and self.on_peer_up is not None:
            self.on_peer_up(link.node)

    def _unregister(self, link: PeerLink) -> None:
        if link.role != "node":
            return
        if self.links.get(link.node) is link:
            del self.links[link.node]
            if self.on_peer_lost is not None:
                self.on_peer_lost(link.node)

    def metrics_snapshot(self) -> dict:
        """Link-layer counters for the node's metrics snapshot."""
        # ``send_buffer_bytes`` stays data-queue-only: the fault drill's
        # bounded-memory assertion gates it against ``max_pending_bytes``.
        send_buffer = sum(link.queue_bytes for link in self.links.values())
        ctrl_buffer = sum(link.ctrl_bytes for link in self.links.values())
        # Mirror the sampled depths into registry gauges so a metrics
        # scrape and this snapshot tell one story.
        self.metrics.gauge("wire_send_buffer_bytes").set(send_buffer)
        self.metrics.gauge("wire_queue_peak_bytes").set(self.queue_peak_bytes)
        self.metrics.gauge("wire_ctrl_buffer_bytes").set(ctrl_buffer)
        self.metrics.gauge("wire_credit_stalls").set(self.credit_stalls)
        return {
            "links_up": len(self.links),
            "ctrl_buffer_bytes": ctrl_buffer,
            "credit": {
                "window": self.credit_window,
                "stalls": self.credit_stalls,
                "grants_in": self.credit_grants_in,
                "grants_out": self.credit_grants_out,
                "data_credit": {str(node): credit for node, credit
                                in sorted(self.data_credit.items())},
            },
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "writes": self.writes,
            "batches_out": self.batches_out,
            "batches_in": self.batches_in,
            "frames_shed": self.frames_shed,
            "send_buffer_bytes": send_buffer,
            "queue_peak_bytes": self.queue_peak_bytes,
            "handshakes_rejected": self.handshakes_rejected,
            "reconnects": self.reconnects,
            "stage_latency": {
                "send_queue": self.h_send_queue.summary(),
                "decode": self.h_decode.summary(),
                "deliver": self.h_deliver.summary(),
            },
            "clock": self.clock_sync.snapshot(),
        }
