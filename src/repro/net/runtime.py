"""NodeRuntime: one OS process hosting one real ActorSpace node.

The simulator's :class:`~repro.runtime.system.ActorSpaceSystem` plays
every node from a single process; a :class:`NodeRuntime` is the same
wiring diagram collapsed to *one* node plus stand-ins for the others:

* one real :class:`~repro.runtime.coordinator.Coordinator` — actors,
  directory replica, resolution cache, parked messages: all unchanged;
* a :class:`RemoteNodeProxy` per peer, satisfying exactly the slice of
  the coordinator interface the runtime reaches for on *other* nodes
  (``_deliver`` becomes "serialize and send", ``crashed`` consults the
  failure detector's verdicts);
* a :class:`~repro.net.remote.RemoteSequencerBus` ordering visibility
  ops in frames instead of simulated latency draws;
* the PR-3 :class:`~repro.runtime.failure.DeadLetterQueue` and
  :class:`~repro.net.remote.NetFailureDetector`, unchanged in logic but
  driven by wall-clock heartbeats;
* a wall clock and an asyncio event pump replacing virtual time — the
  event queue is the same heap, it just waits for real time to pass.

Address determinism is preserved on purpose: node ``k``'s address
factory mints the same ``(node, serial)`` sequence as the simulator's
node ``k`` given the same creation order, and node 0 consumes serial 0
for the root space exactly like ``ActorSpaceSystem`` does.  That is what
lets ``python -m repro check --transport tcp`` diff a real cluster
against the single-process oracle.
"""

from __future__ import annotations

import asyncio
import itertools
import sys
import time
from typing import Any

from repro.core.actorspace import SpaceRecord
from repro.core.addresses import ActorAddress, SpaceAddress
from repro.core.capabilities import CapabilityIssuer
from repro.core.mailbox import DEFAULT_MAILBOX_CAPACITY, ShedPolicy
from repro.core.manager import SpaceManager
from repro.core.matching import resolve_actors
from repro.core.messages import (
    Destination,
    Envelope,
    Message,
    Mode,
    Port,
    parse_destination,
)
from repro.runtime.admission import AdmissionControl
from repro.runtime.context import RuntimeContext
from repro.runtime.coordinator import Coordinator
from repro.runtime.eventlog import EventLog, JsonlSink
from repro.runtime.events import EventQueue
from repro.runtime.failure import DeadLetterQueue
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.network import Topology
from repro.runtime.rng import RngHub
from repro.runtime.tracing import Tracer

from . import registry
from .codec import FrameKind, WireError, encode_value
from .peer import PeerHub, PeerLink
from .remote import NetFailureDetector, RemoteSequencerBus, TcpTransport

#: Detectors on a server run effectively forever; the PR-3 horizon only
#: exists so the *simulator* can quiesce.
_FOREVER = 1e12


def maybe_install_uvloop() -> bool:
    """Install uvloop as the event-loop policy when available.

    Purely optional: the wire path is stdlib-asyncio correct, uvloop
    just makes the same sockets cheaper.  Gated by ``REPRO_UVLOOP``
    (set to ``0`` to force stdlib asyncio); returns whether uvloop is
    active so callers can report it.
    """
    import os

    if os.environ.get("REPRO_UVLOOP", "1") == "0":
        return False
    try:
        import uvloop
    except ImportError:
        return False
    uvloop.install()
    return True


def rebase_wire_counters(node_id: int) -> None:
    """Give this process a collision-free id block for envelopes/messages/ops.

    The module-global counters mint ids dense from 0; with one process
    per node, two nodes would mint the same envelope id and the
    in-flight / dead-letter bookkeeping keyed on it would collide.
    Rebasing each process to ``node_id << 44`` leaves ~17.6e12 ids per
    node — decoded objects carry their ids explicitly, so only local
    minting consumes the block.
    """
    from repro.core import messages as messages_mod
    from repro.runtime import bus as bus_mod

    base = node_id << 44
    messages_mod._envelope_ids = itertools.count(base)
    messages_mod._message_ids = itertools.count(base)
    bus_mod._op_ids = itertools.count(base)


class WallClock:
    """Real elapsed time behind the ``clock.now`` interface.

    ``now`` can be *pinned* while one event executes.  The simulator's
    virtual clock never advances during a turn, and behaviors lean on
    that — e.g. computing ``deadline - ctx.now`` twice and scheduling
    the difference must not come out negative.  The pump pins before
    dispatching each event and unpins after, so actor code observes the
    same frozen-time-per-turn contract in both runtimes.
    """

    __slots__ = ("_t0", "_pinned")

    def __init__(self):
        self._t0 = time.monotonic()
        self._pinned: float | None = None

    @property
    def now(self) -> float:
        if self._pinned is not None:
            return self._pinned
        return time.monotonic() - self._t0

    def pin(self) -> None:
        self._pinned = time.monotonic() - self._t0

    def unpin(self) -> None:
        self._pinned = None

    def advance_to(self, t: float) -> None:
        """No-op: wall time advances itself (the pump waits instead)."""


class _WakingEventQueue(EventQueue):
    """The simulator's event heap, poking the async pump on schedule."""

    def __init__(self, wake):
        super().__init__()
        self._wake = wake

    def schedule(self, time, action, priority=0, tag=None):
        handle = super().schedule(time, action, priority=priority, tag=tag)
        self._wake()
        return handle


class RemoteNodeProxy:
    """The slice of a peer's coordinator the local runtime touches.

    * ``_deliver`` — the simulator's "arrival at the destination node"
      hook; here it means *put the envelope on the wire*.
    * ``_route`` — the dead-letter queue redelivers via the destination
      node's coordinator; remotely that is just a local re-route.
    * ``actors`` — arbitration's load probe reads peer queue depths; a
      real deployment would need the paper's §8 monitoring daemons for
      remote load, so remote actors report load 0 (empty mapping).
    * ``crashed`` — the detector's verdict, read by the DLQ.
    """

    __slots__ = ("runtime", "node_id", "actors")

    def __init__(self, runtime: "NodeRuntime", node_id: int):
        self.runtime = runtime
        self.node_id = node_id
        self.actors: dict = {}

    @property
    def crashed(self) -> bool:
        return self.runtime.transport.node_is_down(self.node_id)

    def _deliver(self, envelope: Envelope) -> None:
        self.runtime.forward_envelope(envelope)

    def _route(self, envelope: Envelope, target: ActorAddress) -> None:
        self.runtime.coordinator._route(envelope, target)

    def __repr__(self):
        return f"<RemoteNodeProxy n{self.node_id}>"


class NodeRuntime:
    """One process's ActorSpace node (see module docstring).

    Duck-types the ``ActorSpaceSystem`` surface the runtime classes
    reach for (``clock``, ``events``, ``coordinators``, ``transport``,
    ``bus``, ``dead_letters``, ``tracer``, ``in_flight``, ...), so
    ``Coordinator``, ``DeadLetterQueue``, ``FailureDetector``, and
    ``RuntimeContext`` run here unmodified.
    """

    def __init__(
        self,
        node_id: int,
        ports: dict[int, int],
        *,
        host: str = "127.0.0.1",
        cluster_id: str = "actorspace",
        seed: int = 0,
        heartbeat_interval: float = 0.2,
        suspect_after: int = 2,
        confirm_after: int = 4,
        trace: bool = True,
        trace_jsonl: str | None = None,
        quiet: bool = True,
        mailbox_capacity: int | None = DEFAULT_MAILBOX_CAPACITY,
        mailbox_policy: ShedPolicy | str = ShedPolicy.DROP_OLDEST,
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        breaker_threshold: int | None = None,
        breaker_window: float = 1.0,
        breaker_cooldown: float = 0.5,
        credit_window: int | None = None,
        data_dir: str | None = None,
        fsync: str = "commit",
        snapshot_interval: float = 30.0,
        shards: int = 1,
        shard_sequencer: int | None = None,
    ):
        rebase_wire_counters(node_id)
        self.node_id = node_id
        self.nodes = sorted(ports)
        self.quiet = quiet
        self.topology = Topology.lan(len(self.nodes))
        self.clock = WallClock()
        self.events: EventQueue = _WakingEventQueue(self._kick)
        self.event_log = EventLog(enabled=trace)
        if trace_jsonl and trace:
            # Flush-on-write sink: a SIGKILLed node (the fault drills)
            # still leaves its flight recording on disk.
            self.event_log.add_sink(JsonlSink(trace_jsonl))
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(keep_samples=256, registry=self.metrics,
                             log=self.event_log)
        self.heartbeat_interval = heartbeat_interval
        self.transport = TcpTransport(
            self, heartbeat_window=heartbeat_interval * 2.5)
        self.rng = RngHub(seed)
        self.capabilities = CapabilityIssuer(
            self.rng.stream(f"capabilities-node{node_id}"))
        self.rng_arbitration = self.rng.stream(f"arbitration-node{node_id}")
        self.processing_delay = 0.0
        self.in_flight: dict[int, Envelope] = {}
        self._held_roots: set = set()
        #: Overload knobs, read by the coordinator exactly like the
        #: simulator's (bounded mailboxes at creation, admission in
        #: ``_route``).  TCP nodes default to bounded-but-roomy.
        self.mailbox_capacity = mailbox_capacity
        self.mailbox_policy = ShedPolicy.parse(mailbox_policy)
        if admission_rate is not None or breaker_threshold is not None:
            self.admission = AdmissionControl(
                self, rate=admission_rate, burst=admission_burst,
                breaker_threshold=breaker_threshold,
                breaker_window=breaker_window,
                breaker_cooldown=breaker_cooldown)
        else:
            self.admission = None

        self.coordinator = Coordinator(node_id, self)
        self.coordinators: list = [
            self.coordinator if n == self.node_id else RemoteNodeProxy(self, n)
            for n in self.nodes
        ]
        #: Visibility-plane partition count.  1 = the historical single
        #: global sequencer; >1 = one sequencer per shard, routed by the
        #: space's root attribute atom (repro.shard).
        self.shards = shards
        self.shard_map = None
        if shards > 1:
            from repro.shard import ShardMap, ShardRouter

            from .remote import ShardedRemoteBus

            self.shard_map = ShardMap(shards, self.nodes)
            if shard_sequencer is not None:
                # Co-located seats (conformance mode): one node orders
                # every shard, so all replicas see one arrival order.
                self.shard_map.assignment = {
                    k: shard_sequencer for k in range(shards)}
            self.bus = ShardedRemoteBus(self, self.shard_map)
            self.coordinator.router = ShardRouter(self.shard_map)
            self.coordinator.directory.sharded = True
        else:
            self.bus = RemoteSequencerBus(self)
        self.dead_letters = DeadLetterQueue(self)
        self.failure_detector = NetFailureDetector(
            self, interval=heartbeat_interval,
            suspect_after=suspect_after, confirm_after=confirm_after)

        # Root-space bootstrap, byte-identical to the simulator: the root
        # is SpaceAddress(0, 0) everywhere, and node 0's factory consumes
        # serial 0 for it (other factories start untouched at 0).
        if node_id == 0:
            self.root_space = self.coordinator.addresses.new_space_address()
        else:
            self.root_space = SpaceAddress(0, 0)
        self.coordinator.directory.add_space(SpaceRecord(self.root_space, None, 0))
        self.coordinator.managers[self.root_space] = SpaceManager()
        self._held_roots.add(self.root_space)

        hub_kw = {} if credit_window is None else {"credit_window": credit_window}
        self.hub = PeerHub(
            node_id, ports, self._on_frame, host=host, cluster_id=cluster_id,
            on_peer_up=self._on_peer_up, log=self._log,
            metrics=self.metrics, clock=lambda: self.clock.now, **hub_kw)
        self._wake: asyncio.Event | None = None
        self._stopping = False
        self.heartbeats_suppressed = 0
        self._seen_peers: set[int] = set()
        self._detector_armed = False
        self._retry_scheduled: set[int] = set()
        self._control_handlers = {
            "ping": self._ctl_ping,
            "status": self._ctl_status,
            "create_space": self._ctl_create_space,
            "create_actor": self._ctl_create_actor,
            "make_visible": self._ctl_make_visible,
            "make_invisible": self._ctl_make_invisible,
            "send": self._ctl_send,
            "broadcast": self._ctl_broadcast,
            "send_to": self._ctl_send_to,
            "resolve": self._ctl_resolve,
            "has_space": self._ctl_has_space,
            "visible_attributes": self._ctl_visible_attributes,
            "actor_state": self._ctl_actor_state,
            "directory": self._ctl_directory,
            "vis_burst": self._ctl_vis_burst,
            "shard_map": self._ctl_shard_map,
            "rebalance": self._ctl_rebalance,
            "snapshot": self._ctl_snapshot,
            "dlq": self._ctl_dlq,
            "telemetry": self._ctl_telemetry,
            "shutdown": self._ctl_shutdown,
        }

        # Durability: open the data directory, recover the previous
        # incarnation's state, then attach the store as a transactional
        # outbox (attachment happens *after* recovery so the replayed
        # suffix is not re-persisted as fresh records).
        self.data_dir = data_dir
        self.snapshot_interval = snapshot_interval
        self.store = None
        self.shard_stores: dict[int, Any] = {}
        self.recovery: dict | None = None
        if data_dir is not None and shards > 1:
            self._init_sharded_stores(data_dir, fsync)
        elif data_dir is not None:
            from repro.store import NodeStore
            from repro.store.recovery import restore_node

            self.store = NodeStore(data_dir, fsync=fsync)
            recovered = self.store.load()
            if not recovered.empty:
                self.recovery = restore_node(
                    self.node_id, self.coordinator, self.dead_letters,
                    recovered, store=self.store)
                self.bus.restore_log(recovered.ops)
                # The log may be truncated below the snapshot; the
                # persisted per-origin watermarks keep wire dedup exact
                # even for origins whose every op predates the snapshot.
                snap = recovered.snapshot or {}
                for origin, floor in snap.get("expected", {}).items():
                    self.bus._expected[origin] = max(
                        self.bus._expected.get(origin, 0), floor)
                self.event_log.emit(
                    "node_recovered", self.clock.now, self.node_id,
                    **self.recovery)
                self._log(f"recovered from {data_dir}: {self.recovery}")
            self.bus.store = self.store
            self.dead_letters.store = self.store
            # A fresh snapshot caps the recovery cost of the *next*
            # restart even if this process dies before the first
            # periodic snapshot fires.
            if self.recovery is not None:
                self.write_snapshot_now()

    # -- durability --------------------------------------------------------------

    def _init_sharded_stores(self, data_dir: str, fsync: str) -> None:
        """One outbox store per shard at ``data_dir/shard-K``.

        Each shard recovers independently: a shard whose store is
        unreadable is skipped (it re-syncs from its sequencer's log over
        the wire) and never blocks replay of the healthy shards.  The
        top-level store keeps the dead-letter namespace.  Snapshots are
        per-plane state and stay disabled in sharded mode — recovery is
        per-shard log replay, merged in tick order across shards.
        """
        from pathlib import Path

        from repro.store import NodeStore

        self.store = NodeStore(data_dir, fsync=fsync)
        self.store.load()
        self.dead_letters.store = self.store
        replayable: list[tuple[int, int, int, Any]] = []
        shard_recovery: dict[int, int] = {}
        for k, bus in sorted(self.bus.shards.items()):
            shard_dir = str(Path(data_dir) / f"shard-{k}")
            try:
                store = NodeStore(shard_dir, fsync=fsync)
                recovered = store.load()
            except Exception as exc:  # noqa: BLE001 - scoped recovery
                self._log(f"shard {k} store unreadable ({exc!r}); "
                          f"will re-sync over the wire")
                continue
            if not recovered.empty and recovered.ops:
                bus.restore_log(recovered.ops)
                shard_recovery[k] = len(recovered.ops)
                for seq, op in recovered.ops.items():
                    tick = op.tick if op.tick is not None else seq
                    replayable.append((tick, k, seq, op))
            bus.store = store
            self.shard_stores[k] = store
        if replayable:
            # Tick order is a linear extension of every per-shard order
            # (repro.shard.merge); dependency parking in the coordinator
            # absorbs any cross-shard ADD-before-vis races regardless.
            replayable.sort()
            for _tick, k, seq, op in replayable:
                self.coordinator.on_bus_delivery(seq, op)
                if op.origin_node == self.node_id:
                    floor = self.coordinator._origin_seqs.get(k, 0)
                    self.coordinator._origin_seqs[k] = max(
                        floor, op.origin_seq + 1)
            self.recovery = {"shards": shard_recovery,
                             "ops_replayed": len(replayable)}
            self.event_log.emit("node_recovered", self.clock.now,
                                self.node_id, **self.recovery)
            self._log(f"recovered from {data_dir}: {self.recovery}")

    def write_snapshot_now(self) -> str | None:
        """Write a directory snapshot and truncate superseded segments."""
        if self.store is None or self.shards > 1:
            return None
        from repro.store.recovery import snapshot_state

        state = snapshot_state(
            self.node_id, self.coordinator, self.dead_letters,
            extra={"expected": dict(self.bus._expected)})
        path = self.store.write_snapshot(
            self.coordinator._next_apply_seq, state)
        self.event_log.emit(
            "snapshot_written", self.clock.now, self.node_id,
            applied_seq=self.coordinator._next_apply_seq)
        return path

    async def _snapshot_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.snapshot_interval)
            if self._stopping:
                return
            try:
                self.write_snapshot_now()
            except Exception as exc:  # noqa: BLE001 - keep serving
                self._log(f"snapshot failed: {exc!r}")

    # -- system-facade duck typing ----------------------------------------------

    def make_context(self, record, cause=None) -> RuntimeContext:
        return RuntimeContext(self, record, cause=cause)  # type: ignore[arg-type]

    def _log(self, text: str) -> None:
        if not self.quiet:
            print(f"[node {self.node_id} t={self.clock.now:8.3f}] {text}",
                  file=sys.stderr, flush=True)

    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    # -- failure handling --------------------------------------------------------

    def _on_node_confirmed_down(self, node: int) -> None:
        """First local confirmation: quarantine + bus failover.

        The simulator quarantines the dead node on every live replica in
        one call; here each process runs this independently when its own
        detector confirms — same global outcome, reached per-replica.
        """
        self.transport.crash_node(node)
        masked = self.coordinator.directory.quarantine_node(node)
        self.tracer.on_quarantine("quarantined", self.node_id, self.clock.now,
                                  target_node=node, masked=masked)
        self.bus.on_node_down(node)
        self._log(f"confirmed node {node} down (masked {masked} entries)")

    def on_peer_recovered(self, node: int) -> None:
        """Real bytes arrived from a peer we had confirmed down.

        The detector cannot see this transition (a confirmed-down peer
        reads as down in the transport forever), so the frame-receive
        path calls in here: lift the verdict and the quarantine mask,
        reconsider parked messages the mask was hiding matches from,
        re-elect the bus leadership, and flush dead letters.
        """
        if node not in self.transport.crashed:
            return
        self.transport.recover_node(node)
        self.failure_detector.on_node_recovered(node)
        directory = self.coordinator.directory
        if node in directory.quarantined_nodes:
            directory.unquarantine_node(node)
            self.tracer.on_quarantine("unquarantined", self.node_id,
                                      self.clock.now, target_node=node)
            self.coordinator._recheck_parked()
        self.bus.on_node_recovered(node)
        self.dead_letters.flush(node)
        self._log(f"node {node} recovered")

    # -- outbound envelopes ------------------------------------------------------

    def forward_envelope(self, envelope: Envelope) -> None:
        """Ship a routed envelope to its target's home node.

        The local ``_route`` already did hop accounting and registered
        the envelope in-flight; it leaves this process's authority the
        moment it hits the socket buffer, so it is popped from in-flight
        here (the receiving node re-tracks it).  An unreachable peer
        (link down but not yet confirmed dead) parks the envelope in the
        dead-letter queue; reconnection flushes it.
        """
        target = envelope.target
        assert target is not None
        self.in_flight.pop(envelope.envelope_id, None)
        if self.hub.send(target.node, FrameKind.ENVELOPE, {"envelope": envelope}):
            # The envelope left this node's authority: any dead-letter
            # attempt record for it is finished business (the receiving
            # node starts its own accounting from zero).
            self.dead_letters.note_delivered(envelope.envelope_id)
            return
        self.tracer.on_dropped("node_down", envelope, node=self.node_id,
                               t=self.clock.now)
        self.dead_letters.capture(envelope, target.node, "node_unreachable")
        self._schedule_unreachable_retry(target.node)

    def _schedule_unreachable_retry(self, node: int) -> None:
        """Keep retrying dead letters parked for a *transiently* down link.

        Peer-up and recovery events flush the queue, but a send can also
        fail mid-reconnect with no later edge to ride (the link was never
        lost from the hub's perspective) — so poll until the link is back
        or the failure detector upgrades the outage to confirmed-down
        (whose recovery path owns the flush from then on).
        """
        if node in self._retry_scheduled:
            return
        self._retry_scheduled.add(node)
        self.events.schedule(self.clock.now + self.heartbeat_interval,
                             lambda: self._retry_unreachable(node))

    def _retry_unreachable(self, node: int) -> None:
        self._retry_scheduled.discard(node)
        if node in self.transport.crashed:
            return
        if self.dead_letters.pending(node) == 0:
            return
        if node in self.hub.links:
            self.dead_letters.flush(node)
        if self.dead_letters.pending(node):
            self._schedule_unreachable_retry(node)

    # -- inbound frames ----------------------------------------------------------

    def _on_frame(self, src: int, kind: FrameKind, payload: Any,
                  link: PeerLink) -> None:
        if link.role == "node" and src in self.transport.crashed:
            self.on_peer_recovered(src)
        if kind == FrameKind.HEARTBEAT:
            # The hub already refreshed last_heard; the beacon's payload
            # additionally feeds the per-peer clock-offset estimate.
            self.transport.on_heartbeat(src, payload)
            return
        if kind == FrameKind.ENVELOPE:
            self.coordinator._deliver(payload["envelope"])
        elif kind == FrameKind.BUS_SUBMIT:
            self.bus.on_submit(src, payload["op"])
        elif kind == FrameKind.SHARD_FWD:
            # Cross-shard submission (credit-controlled data class); the
            # op's shard stamp routes it to the right inner sequencer.
            self.bus.on_submit(src, payload["op"])
        elif kind == FrameKind.BUS_OP:
            self.bus.on_op(payload["seq"], payload["op"])
        elif kind == FrameKind.BUS_ACK:
            self.bus.on_ack(payload["op_id"])
        elif kind == FrameKind.SYNC_REQ:
            self.bus.on_sync_req(payload["node"], payload["from_seq"],
                                 payload.get("shard", 0))
        elif kind == FrameKind.CONTROL:
            self._on_control(payload, link)

    def _on_peer_up(self, node: int) -> None:
        """A node link registered (first connect or reconnect)."""
        self.on_peer_recovered(node)  # no-op unless it was confirmed down
        self._seen_peers.add(node)
        self.dead_letters.flush(node)
        # Catch up on any visibility ops sequenced before we joined (or
        # while we were partitioned/restarted) — per shard, each bus
        # syncs iff the newly linked peer holds its sequencer seat.
        self.bus.on_peer_up(node)
        peers = {n for n in self.nodes if n != self.node_id}
        if not self._detector_armed and self._seen_peers >= peers:
            self._detector_armed = True
            self.failure_detector.start(_FOREVER)
            self._log("failure detector armed")

    # -- serving -----------------------------------------------------------------

    async def serve(self, ready: asyncio.Event | None = None) -> None:
        """Run the node until a control ``shutdown`` (or cancellation)."""
        self._wake = asyncio.Event()
        await self.hub.start()
        self._log(f"listening on {self.hub.host}:{self.hub.ports[self.node_id]} "
                  f"peers={[n for n in self.nodes if n != self.node_id]}")
        heartbeats = asyncio.ensure_future(self._heartbeat_loop())
        snapshots = None
        if self.store is not None and self.snapshot_interval > 0 \
                and self.shards == 1:
            snapshots = asyncio.ensure_future(self._snapshot_loop())
        if ready is not None:
            ready.set()
        try:
            await self._pump()
        finally:
            for task in (heartbeats, snapshots):
                if task is None:
                    continue
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            await self.hub.stop(drain=True)
            if self.store is not None:
                # Orderly exit: fold everything into a final snapshot so
                # the next start replays nothing.  A SIGKILL skips this,
                # which is exactly what the recovery path is for.
                try:
                    self.write_snapshot_now()
                finally:
                    self.store.close()
                    for store in self.shard_stores.values():
                        store.close()
            self.event_log.close()

    def request_shutdown(self) -> None:
        self._stopping = True
        self._kick()

    async def _heartbeat_loop(self) -> None:
        """Beacon liveness — but only where data is not already doing it.

        Any frame we send refreshes the peer's last-heard oracle, so a
        link that carried data within the last interval needs no
        explicit HEARTBEAT: under sustained load the beacons disappear
        entirely (piggybacked liveness), and they resume the moment a
        link goes quiet.
        """
        while not self._stopping:
            idle = self.hub.idle_peers(self.heartbeat_interval)
            self.heartbeats_suppressed += len(self.hub.links) - len(idle)
            for node in idle:
                self.hub.send(node, FrameKind.HEARTBEAT,
                              self.transport.heartbeat_payload(node))
            await asyncio.sleep(self.heartbeat_interval)

    async def _pump(self) -> None:
        """Drive the event heap against the wall clock.

        Due events run back-to-back (yielding every batch so socket
        readers stay live); otherwise sleep until the next deadline or a
        ``schedule`` wake-up, whichever comes first.
        """
        assert self._wake is not None
        processed = 0
        while not self._stopping:
            due = self.events.peek_time()
            now = self.clock.now
            if due is not None and due <= now:
                popped = self.events.pop()
                if popped is not None:
                    _when, action = popped
                    self.clock.pin()
                    try:
                        action()
                    except Exception as exc:  # noqa: BLE001 - isolate events
                        self._log(f"event raised: {exc!r}")
                    finally:
                        self.clock.unpin()
                    processed += 1
                    if processed % 64 == 0:
                        await asyncio.sleep(0)
                continue
            wait = self.heartbeat_interval if due is None \
                else min(max(due - now, 0.0) + 0.001, self.heartbeat_interval)
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), wait)
            except asyncio.TimeoutError:
                pass

    # -- control plane -----------------------------------------------------------

    def _on_control(self, payload: Any, link: PeerLink) -> None:
        request_id = payload.get("id") if isinstance(payload, dict) else None
        reply: dict[str, Any]
        try:
            if not isinstance(payload, dict):
                raise WireError("control payload must be a mapping")
            handler = self._control_handlers.get(payload.get("cmd"))
            if handler is None:
                raise WireError(f"unknown control command {payload.get('cmd')!r}")
            value = handler(**(payload.get("args") or {}))
            reply = {"id": request_id, "ok": True, "value": value}
        except Exception as exc:  # noqa: BLE001 - fault back to the launcher
            reply = {"id": request_id, "ok": False,
                     "error": f"{type(exc).__name__}: {exc}"}
        if not self.hub.send_link(link, FrameKind.REPLY, reply):
            self.hub.send_link(link, FrameKind.REPLY, {
                "id": request_id, "ok": False,
                "error": "reply was not wire-encodable",
            })

    @staticmethod
    def _wire_safe(value: Any) -> Any:
        try:
            encode_value(value)
            return value
        except WireError:
            return repr(value)

    def _ctl_ping(self) -> dict:
        return {"node": self.node_id, "t": self.clock.now}

    def _shard_status(self) -> dict | None:
        if self.shards == 1:
            return None
        cursors = self.coordinator._shard_cursors
        return {
            k: {
                "sequencer": bus.sequencer_node,
                "home": bus.home_node,
                "applied": cursors.get(k, 0),
                "ops_sequenced": bus.ops_sequenced,
                "log": len(bus.log),
                "unacked": len(bus._unacked),
            }
            for k, bus in sorted(self.bus.shards.items())
        }

    def _applied_total(self) -> int:
        if self.shards == 1:
            return self.coordinator._next_apply_seq
        return sum(self.coordinator._shard_cursors.values())

    def _ctl_status(self) -> dict:
        return {
            "node": self.node_id,
            "applied_seq": self._applied_total(),
            "shards": self._shard_status(),
            "shard_map_version": (self.shard_map.version
                                  if self.shard_map is not None else None),
            "actors": len(self.coordinator.actors),
            "events_pending": len(self.events),
            "in_flight": len(self.in_flight),
            "links": sorted(self.hub.links),
            "seen_peers": sorted(self._seen_peers),
            "detector_armed": self._detector_armed,
            "confirmed_down": sorted(self.transport.crashed),
            "quarantined": sorted(self.coordinator.directory.quarantined_nodes),
            "suspended": len(self.coordinator.suspended),
            "persistent": len(self.coordinator.persistent),
            "dlq_pending": self.dead_letters.pending(),
            "frames_shed": self.hub.frames_shed,
            "batches_in": self.hub.batches_in,
            "batches_out": self.hub.batches_out,
            "heartbeats_suppressed": self.heartbeats_suppressed,
            "mailbox_shed": sum(r.mailbox.shed_count
                                for r in self.coordinator.actors.values()),
            "mailbox_suspended": sum(r.mailbox.suspended
                                     for r in self.coordinator.actors.values()),
            "credit_stalls": self.hub.credit_stalls,
            "credit_grants_in": self.hub.credit_grants_in,
            "credit_grants_out": self.hub.credit_grants_out,
            "admission": self.admission.metrics()
                         if self.admission is not None else None,
            "clock": self.hub.clock_sync.snapshot(),
            "bus": self.bus.metrics_snapshot(),
            "store": self.store.metrics_snapshot()
                     if self.store is not None else None,
            "recovery": self.recovery,
            "dlq_recovered": self.dead_letters.recovered_total,
        }

    def _ctl_create_space(self, attributes=None, parent=None, capability=None):
        # Forward the placement hints: the coordinator homes a new space's
        # visibility shard by hashing its root attribute atom (falling back
        # to the parent's shard, then the address).  Dropping them here
        # would silently hash the address instead — spaces would land on
        # arbitrary shards and every affine submit would take the remote
        # SHARD_FWD path.
        address = self.coordinator.create_space(
            capability, attributes=attributes, parent=parent)
        self._held_roots.add(address)
        if attributes is not None:
            self.coordinator.make_visible(
                address, attributes,
                parent if parent is not None else self.root_space, capability)
        return {"address": address}

    def _ctl_create_actor(self, behavior: str, params=None, space=None,
                          visible=None, capability=None):
        built = registry.build_behavior(behavior, params)
        address = self.coordinator.create_actor(
            built, host_space=space if space is not None else self.root_space,
            capability=capability)
        self._held_roots.add(address)
        if visible is not None:
            self.coordinator.make_visible(
                address, visible["attributes"],
                visible.get("space") or self.root_space, capability)
        return {"address": address}

    def _ctl_make_visible(self, target, attributes, space=None, capability=None):
        self.coordinator.make_visible(
            target, attributes,
            space if space is not None else self.root_space, capability)
        return True

    def _ctl_make_invisible(self, target, space=None, capability=None):
        self.coordinator.make_invisible(
            target, space if space is not None else self.root_space, capability)
        return True

    def _external_envelope(self, mode: Mode, payload, *, destination=None,
                           target=None, reply_to=None, headers=None) -> Envelope:
        return Envelope(
            message=Message(payload, reply_to=reply_to, headers=headers or {}),
            sender=None, mode=mode, target=target, destination=destination,
            port=Port.INVOCATION, sent_at=self.clock.now,
            origin_space=self.root_space,
        )

    @staticmethod
    def _as_destination(destination) -> Destination:
        if isinstance(destination, Destination):
            return destination
        return parse_destination(destination)

    def _ctl_send(self, destination, payload, reply_to=None):
        self.coordinator.send_pattern(self._external_envelope(
            Mode.SEND, payload, destination=self._as_destination(destination),
            reply_to=reply_to))
        return True

    def _ctl_broadcast(self, destination, payload, reply_to=None):
        self.coordinator.broadcast_pattern(self._external_envelope(
            Mode.BROADCAST, payload,
            destination=self._as_destination(destination), reply_to=reply_to))
        return True

    def _ctl_send_to(self, target, payload, reply_to=None):
        self.coordinator.send_direct(self._external_envelope(
            Mode.DIRECT, payload, target=target, reply_to=reply_to))
        return True

    def _ctl_resolve(self, pattern, space=None):
        scope = space if space is not None else self.root_space
        return sorted(resolve_actors(
            self.coordinator.directory, pattern, scope,
            cache=self.coordinator.resolution_cache))

    def _ctl_has_space(self, address):
        return self.coordinator.directory.has_space(address)

    def _ctl_visible_attributes(self, target, space=None):
        scope = space if space is not None else self.root_space
        directory = self.coordinator.directory
        if not directory.has_space(scope):
            return frozenset()
        entry = directory.space(scope).lookup(target)
        return entry.attributes if entry is not None else frozenset()

    def _ctl_actor_state(self, address, attrs):
        record = self.coordinator.actors.get(address)
        if record is None:
            raise WireError(f"no such actor on node {self.node_id}: {address!r}")
        return {name: self._wire_safe(getattr(record.behavior, name, None))
                for name in attrs}

    def _ctl_directory(self):
        return {"snapshot": self.coordinator.directory.snapshot(),
                "quarantined": sorted(self.coordinator.directory.quarantined_nodes)}

    def _ctl_vis_burst(self, target, space=None, count=1, prefix="burst",
                       capability=None):
        """Issue ``count`` visibility ops on one space (bench workload).

        Each op rebinds ``target``'s attributes in ``space`` — a full
        sequencer round trip per op on whatever shard owns the space, so
        the launcher can aim load at a specific shard.
        """
        scope = space if space is not None else self.root_space
        for index in range(int(count)):
            self.coordinator.make_visible(
                target, f"{prefix}/v{index & 7}", scope, capability)
        return {"submitted": int(count)}

    def _ctl_shard_map(self, manifest=None):
        """Read the shard map, or adopt a gossiped newer assignment."""
        if self.shard_map is None:
            raise WireError("node is not sharded")
        applied = False
        if manifest is not None:
            applied = self.bus.apply_map(manifest)
        return {"map": self.shard_map.to_manifest(), "applied": applied}

    def _ctl_rebalance(self, shard, seat):
        """Move ``shard``'s sequencer seat to node ``seat``, live."""
        if self.shard_map is None:
            raise WireError("node is not sharded")
        version = self.bus.rebalance(int(shard), int(seat))
        return {"version": version,
                "sequencer": self.bus.shards[int(shard)].sequencer_node}

    def _ctl_snapshot(self, events: bool = True):
        return {
            "node": self.node_id,
            "metrics": self.metrics_snapshot(),
            "transport": self.transport.metrics_snapshot(),
            "hub": self.hub.metrics_snapshot(),
            "bus": self.bus.metrics_snapshot(),
            "events": [self._wire_safe(e.to_dict()) for e in self.event_log]
                      if events else [],
        }

    def _ctl_telemetry(self, since_seq: int = 0, max_events: int = 2000):
        """One telemetry pull: every snapshot + an incremental event window.

        ``since_seq`` is the caller's high-water mark (the ``next_seq``
        of its previous pull); only events at or past it are returned,
        capped at ``max_events``.  ``events_missed`` counts ring-buffer
        evictions the caller can never see — an honest collector reports
        them instead of pretending the window was complete.
        """
        buffered = list(self.event_log.events)
        oldest = buffered[0].seq if buffered else self.event_log.next_seq
        missed = max(0, oldest - since_seq)
        window = [e for e in buffered if e.seq >= since_seq][:max_events]
        if window:
            next_seq = window[-1].seq + 1
        else:
            next_seq = max(since_seq, self.event_log.next_seq)
        return {
            "node": self.node_id,
            "t": self.clock.now,
            "metrics": self.metrics_snapshot(),
            "hub": self.hub.metrics_snapshot(),
            "bus": self.bus.metrics_snapshot(),
            "transport": self.transport.metrics_snapshot(),
            "clock": self.hub.clock_sync.snapshot(),
            "heartbeats_suppressed": self.heartbeats_suppressed,
            "events": [self._wire_safe(e.to_dict()) for e in window],
            "next_seq": next_seq,
            "events_missed": missed,
            "events_total": self.event_log.emitted_count,
        }

    def _ctl_dlq(self):
        return {
            "pending": self.dead_letters.pending(),
            "queued": self.dead_letters.queued_total,
            "redelivered": self.dead_letters.redelivered_total,
            "expired": self.dead_letters.expired_total,
            "recovered": self.dead_letters.recovered_total,
        }

    def _ctl_shutdown(self):
        self._log("shutdown requested")
        # Reply first (returning schedules the REPLY write), stop on the
        # next pump turn.
        self.events.schedule(self.clock.now + 0.05, self.request_shutdown)
        return True

    # -- observability -----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        depth = sum(r.mailbox.pending for r in self.coordinator.actors.values()
                    if not r.terminated)
        self.metrics.gauge(f"queue_depth_node_{self.node_id}").set(depth)
        self.metrics.gauge(f"parked_node_{self.node_id}").set(
            len(self.coordinator.suspended) + len(self.coordinator.persistent))
        self.metrics.gauge("in_flight").set(len(self.in_flight))
        self.metrics.gauge("heartbeats_suppressed").set(
            self.heartbeats_suppressed)
        for name, value in self.transport.metrics_snapshot().items():
            if not isinstance(value, dict):
                self.metrics.gauge(f"transport_{name}").set(value)
        return self.metrics.snapshot()

    def __repr__(self):
        return (f"<NodeRuntime n{self.node_id}/{len(self.nodes)} "
                f"actors={len(self.coordinator.actors)} t={self.clock.now:.3f}>")
