"""Launcher for multi-process clusters, plus the drivers and drills.

``python -m repro serve`` runs ONE node (a :class:`~repro.net.runtime.
NodeRuntime`) in the current process; ``python -m repro cluster`` spawns
N of those as subprocesses on localhost, drives a shipped example across
them through the control plane, optionally runs a fault drill
(SIGSTOP/SIGCONT stall or SIGKILL + respawn), and collects
metrics/event-log snapshots back into a report.

The control plane is deliberately launcher-shaped: behaviors are named
registry entries (:mod:`repro.net.registry`), addresses and patterns
travel in wire form, and every verification reads actor state back over
the sockets — nothing in the driver peeks into the node processes.

``run_tcp_conformance`` reuses the same machinery as an oracle check:
the identical creation/visibility script is applied to a single-process
:class:`~repro.runtime.system.ActorSpaceSystem` and to a real TCP
cluster (all ops through node 0, so both mint identical addresses and
the sequencer orders identically), then the directory replicas and
pattern resolutions are compared value-for-value.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.apps.process_pool import Job, expected_result
from repro.core.messages import Destination
from repro.runtime.eventlog import (
    TraceEvent,
    export_chrome_trace,
    validate_chrome_trace,
)

from .clocksync import ClockSync
from .codec import (
    FrameDecoder,
    FrameKind,
    encode_frame,
    hello_payload,
)

#: "node" ids presented by control connections; never a cluster member.
CONTROL_NODE = 1_000_000


class ControlError(RuntimeError):
    """A control call failed (transport trouble or a node-side error)."""


def _free_ports(count: int, host: str = "127.0.0.1") -> list[int]:
    """Reserve ``count`` currently-free TCP ports (bind-probe then release)."""
    socks, ports = [], []
    try:
        for _ in range(count):
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            s.bind((host, 0))
            socks.append(s)
            ports.append(s.getsockname()[1])
    finally:
        for s in socks:
            s.close()
    return ports


def loopback_available(host: str = "127.0.0.1") -> bool:
    """Can this platform bind a loopback TCP socket?  (Skip gate.)"""
    try:
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            s.bind((host, 0))
        finally:
            s.close()
        return True
    except OSError:
        return False


def _jsonable(value: Any) -> Any:
    """Recursively convert wire values (addresses, paths, sets) for JSON."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {str(_jsonable(k)): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(_jsonable(v)) for v in value)
    return repr(value)


class ControlClient:
    """Blocking control connection to one node process.

    Speaks the same framed protocol as the nodes, with role ``control``:
    the node answers commands but never registers the link as a peer, so
    no heartbeat/bus traffic arrives here — only matched replies.
    """

    def __init__(self, host: str, port: int, *, cluster_id: str = "actorspace",
                 timeout: float = 10.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        self._decoder = FrameDecoder()
        self._frames: deque = deque()
        self._ids = itertools.count(1)
        self._send(FrameKind.HELLO,
                   hello_payload(CONTROL_NODE, "control", cluster_id))
        kind, payload = self._recv()
        if kind == FrameKind.REJECT:
            raise ControlError(f"handshake rejected: {payload!r}")
        if kind != FrameKind.WELCOME:
            raise ControlError(f"expected WELCOME, got {kind!r}")

    def _send(self, kind: FrameKind, payload: Any) -> None:
        try:
            self.sock.sendall(encode_frame(kind, payload))
        except OSError as exc:
            raise ControlError(f"control send failed: {exc}") from exc

    def _recv(self) -> tuple[FrameKind, Any]:
        while not self._frames:
            try:
                data = self.sock.recv(65536)
            except OSError as exc:
                raise ControlError(f"control recv failed: {exc}") from exc
            if not data:
                raise ControlError("control connection closed by node")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.popleft()

    def call(self, cmd: str, **args: Any) -> Any:
        """Invoke ``cmd`` on the node; raise :class:`ControlError` on failure."""
        request_id = next(self._ids)
        self._send(FrameKind.CONTROL,
                   {"id": request_id, "cmd": cmd, "args": args})
        while True:
            kind, payload = self._recv()
            if kind != FrameKind.REPLY or not isinstance(payload, dict):
                continue  # stray frame (e.g. BYE racing a shutdown)
            if payload.get("id") != request_id:
                continue
            if not payload.get("ok"):
                raise ControlError(str(payload.get("error")))
            return payload.get("value")

    def close(self) -> None:
        try:
            self.sock.sendall(encode_frame(FrameKind.BYE, None))
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class LocalCluster:
    """N localhost node processes plus their control connections."""

    def __init__(self, nodes: int, *, seed: int = 0, heartbeat: float = 0.2,
                 host: str = "127.0.0.1", cluster_id: str | None = None,
                 out_dir: str | Path | None = None, verbose: bool = False,
                 trace: bool = True,
                 node_args: list[str] | None = None,
                 data_dir: str | Path | None = None,
                 shards: int = 1,
                 log: Callable[[str], None] | None = None):
        self.n = nodes
        self.seed = seed
        self.heartbeat = heartbeat
        #: Visibility-plane shard count.  ``1`` keeps the classic single
        #: sequencer; ``>1`` partitions the directory across per-shard
        #: sequencers (each node gets ``--shards`` on its command line).
        self.shards = shards
        #: Flight-recorder event logs in the node processes.  On by
        #: default for observability; benchmarks turn it off — emitting
        #: several trace records per message is measurable at load.
        self.trace = trace
        self.host = host
        self.cluster_id = cluster_id or f"actorspace-{os.getpid()}"
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.verbose = verbose
        #: Extra ``repro serve`` CLI flags appended verbatim to every
        #: node's command line (overload knobs, detector tuning, ...).
        self.node_args = list(node_args) if node_args else []
        #: When set, every node gets ``<data_dir>/node<N>`` as its durable
        #: data directory — killed nodes then recover from disk on respawn.
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self._log = log or (lambda text: None)
        self.ports: list[int] = []
        self.procs: dict[int, subprocess.Popen] = {}
        self.controls: dict[int, ControlClient] = {}
        self._logfiles: list[Any] = []

    # -- lifecycle ---------------------------------------------------------------

    def start(self, timeout: float = 20.0) -> "LocalCluster":
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
        self.ports = _free_ports(self.n, self.host)
        if self.out_dir is not None:
            # The manifest lets out-of-process tools (`repro top`,
            # `repro trace --cluster`) find the control ports.
            manifest: dict[str, Any] = {
                "nodes": self.n,
                "host": self.host,
                "ports": self.ports,
                "cluster_id": self.cluster_id,
                "launcher_pid": os.getpid(),
            }
            if self.shards > 1:
                from repro.shard.map import ShardMap

                manifest["shards"] = self.shards
                manifest["shard_map"] = ShardMap(
                    self.shards, list(range(self.n))).to_manifest()
            (self.out_dir / "cluster.json").write_text(
                json.dumps(manifest, indent=2) + "\n")
        for node in range(self.n):
            self._spawn(node)
        for node in range(self.n):
            self.controls[node] = self._connect(node, timeout)
        self.wait_linked(timeout=timeout)
        self._log(f"cluster up: {self.n} nodes on ports {self.ports}")
        return self

    def _spawn(self, node: int) -> None:
        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--node", str(node),
            "--ports", ",".join(str(p) for p in self.ports),
            "--host", self.host,
            "--cluster-id", self.cluster_id,
            "--seed", str(self.seed),
            "--heartbeat", str(self.heartbeat),
        ]
        if self.shards > 1:
            cmd += ["--shards", str(self.shards)]
        cmd += self.node_args
        if self.data_dir is not None:
            cmd += ["--data-dir", str(self.data_dir / f"node{node}")]
        if self.verbose:
            cmd.append("--verbose")
        if not self.trace:
            cmd.append("--no-trace")
        elif self.out_dir is not None:
            cmd += ["--trace-jsonl",
                    str(self.out_dir / f"node{node}.events.jsonl")]
        stderr: Any = subprocess.DEVNULL
        if self.out_dir is not None:
            logfile = open(self.out_dir / f"node{node}.log", "ab")
            self._logfiles.append(logfile)
            stderr = logfile
        elif self.verbose:
            stderr = None  # inherit
        self.procs[node] = subprocess.Popen(
            cmd, env=env, stdout=stderr, stderr=stderr)

    def _connect(self, node: int, timeout: float) -> ControlClient:
        deadline = time.monotonic() + timeout
        while True:
            proc = self.procs[node]
            if proc.poll() is not None:
                raise ControlError(
                    f"node {node} exited with {proc.returncode} before accepting "
                    f"control connections")
            try:
                return ControlClient(self.host, self.ports[node],
                                     cluster_id=self.cluster_id)
            except (OSError, ControlError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)

    def call(self, node: int, cmd: str, **args: Any) -> Any:
        return self.controls[node].call(cmd, **args)

    def wait_until(self, predicate: Callable[[], bool], *, timeout: float = 20.0,
                   interval: float = 0.05, what: str = "condition") -> None:
        deadline = time.monotonic() + timeout
        while True:
            try:
                if predicate():
                    return
            except ControlError:
                pass  # a node mid-restart; keep polling until the deadline
            if time.monotonic() > deadline:
                raise TimeoutError(f"cluster: timed out waiting for {what}")
            time.sleep(interval)

    def wait_linked(self, *, nodes: list[int] | None = None,
                    timeout: float = 20.0) -> None:
        """Block until every node has live links to all peers + armed detector."""
        members = nodes if nodes is not None else list(range(self.n))

        def linked() -> bool:
            for node in members:
                status = self.call(node, "status")
                peers = {p for p in range(self.n) if p != node}
                if set(status["links"]) != peers or not status["detector_armed"]:
                    return False
            return True

        self.wait_until(linked, timeout=timeout, what="full mesh + detectors")

    # -- fault injection ---------------------------------------------------------

    def stall(self, node: int) -> None:
        """SIGSTOP: the process freezes but keeps its sockets and state."""
        self._log(f"stalling node {node} (SIGSTOP)")
        os.kill(self.procs[node].pid, signal.SIGSTOP)

    def resume(self, node: int) -> None:
        self._log(f"resuming node {node} (SIGCONT)")
        os.kill(self.procs[node].pid, signal.SIGCONT)

    def kill(self, node: int) -> None:
        """SIGKILL: the process dies; actor state on it is lost."""
        self._log(f"killing node {node} (SIGKILL)")
        proc = self.procs[node]
        proc.kill()
        proc.wait()
        control = self.controls.pop(node, None)
        if control is not None:
            control.close()

    def respawn(self, node: int, timeout: float = 20.0) -> None:
        """Restart a killed node on its old port; it re-syncs via the bus."""
        self._log(f"respawning node {node}")
        self._spawn(node)
        self.controls[node] = self._connect(node, timeout)

    def kill_all(self) -> None:
        """SIGKILL every still-running node (total-cluster crash drill)."""
        for node in sorted(self.procs):
            if self.procs[node].poll() is None:
                self.kill(node)

    def respawn_all(self, nodes: list[int] | None = None,
                    timeout: float = 20.0) -> None:
        """Restart a set of killed nodes (default: all) on their old ports."""
        members = list(nodes) if nodes is not None else sorted(self.procs)
        for node in members:
            self._spawn(node)
        for node in members:
            self.controls[node] = self._connect(node, timeout)

    # -- observability -----------------------------------------------------------

    def collect(self, *, events: bool = True) -> dict[int, dict]:
        """Snapshot every reachable node (metrics, counters, event log)."""
        snapshots: dict[int, dict] = {}
        for node in sorted(self.controls):
            try:
                snapshots[node] = self.call(node, "snapshot", events=events)
            except ControlError as exc:
                snapshots[node] = {"node": node, "error": str(exc)}
        if self.out_dir is not None:
            for node, snap in snapshots.items():
                path = self.out_dir / f"node{node}.snapshot.json"
                path.write_text(json.dumps(_jsonable(snap), indent=2))
        return snapshots

    def shutdown(self, timeout: float = 5.0) -> None:
        for node, control in list(self.controls.items()):
            try:
                control.call("shutdown")
            except ControlError:
                pass
            control.close()
        self.controls.clear()
        deadline = time.monotonic() + timeout
        for node, proc in self.procs.items():
            if proc.poll() is not None:
                continue
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        for logfile in self._logfiles:
            try:
                logfile.close()
            except OSError:
                pass
        self._logfiles.clear()
        self._log("cluster down")


# -- telemetry aggregation ------------------------------------------------------


def _event_from_dict(record: dict) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from its ``to_dict`` wire form."""
    return TraceEvent(
        seq=int(record.get("seq", 0)),
        t=float(record.get("t", 0.0)),
        kind=str(record.get("kind", "?")),
        node=int(record.get("node", 0)),
        envelope_id=record.get("envelope_id"),
        trace_id=record.get("trace_id"),
        parent_id=record.get("parent_id"),
        data=dict(record.get("data") or {}),
    )


class TelemetryCollector:
    """Launcher-side scraper: pull every node's telemetry onto one timeline.

    Owns one *dedicated* control connection per node — a
    :class:`ControlClient` matches replies by id and discards stray
    frames, so sharing the cluster's own control links from a background
    thread would eat each other's replies.

    Each pull grabs (a) the node's metric/hub/bus/transport snapshots,
    (b) the flight-recorder events past the previous pull's high-water
    mark, and (c) a control-plane ``ping`` round trip that feeds an
    NTP-style :class:`ClockSync` over the collector's own
    ``time.monotonic``.  :meth:`merged_events` then maps every node's
    wall-clock events onto the collector timeline, rebases the earliest
    to zero, and repairs any residual cross-node causality inversions
    (offset error is bounded by half the control RTT, which can exceed a
    one-way data-path latency on loopback).
    """

    def __init__(self, host: str, ports: list[int], *,
                 cluster_id: str = "actorspace", timeout: float = 3.0,
                 max_events_per_pull: int = 2000):
        self.host = host
        self.ports = list(ports)
        self.cluster_id = cluster_id
        self.timeout = timeout
        self.max_events_per_pull = max_events_per_pull
        self.clock_sync = ClockSync(clock=time.monotonic)
        self.events: dict[int, list[TraceEvent]] = {
            node: [] for node in range(len(self.ports))}
        self.snapshots: dict[int, dict] = {}
        self.events_missed: dict[int, int] = {}
        self.pulls = 0
        self.pull_errors = 0
        self._since: dict[int, int] = {}
        self._clients: dict[int, ControlClient] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @classmethod
    def for_cluster(cls, cluster: LocalCluster, **kwargs) -> "TelemetryCollector":
        return cls(cluster.host, cluster.ports,
                   cluster_id=cluster.cluster_id, **kwargs)

    @classmethod
    def from_manifest(cls, path: str | Path, **kwargs) -> "TelemetryCollector":
        """Attach to a running cluster via its ``cluster.json``."""
        manifest = json.loads(Path(path).read_text())
        return cls(manifest["host"], manifest["ports"],
                   cluster_id=manifest["cluster_id"], **kwargs)

    # -- connections -------------------------------------------------------------

    def _client(self, node: int) -> ControlClient:
        client = self._clients.get(node)
        if client is None:
            client = ControlClient(self.host, self.ports[node],
                                   cluster_id=self.cluster_id,
                                   timeout=self.timeout)
            self._clients[node] = client
        return client

    def _drop_client(self, node: int) -> None:
        client = self._clients.pop(node, None)
        if client is not None:
            client.close()

    # -- sampling ----------------------------------------------------------------

    def sample_clock(self, node: int) -> None:
        """One ping round trip -> one NTP sample for ``node``."""
        t_send = time.monotonic()
        reply = self._client(node).call("ping")
        t_recv = time.monotonic()
        t_node = reply.get("t") if isinstance(reply, dict) else None
        if isinstance(t_node, (int, float)):
            self.clock_sync.add_sample(node, t_send, t_node, t_node, t_recv)

    def pull_node(self, node: int) -> dict:
        """One telemetry pull from ``node`` (events are incremental)."""
        self.sample_clock(node)
        value = self._client(node).call(
            "telemetry", since_seq=self._since.get(node, 0),
            max_events=self.max_events_per_pull)
        self._since[node] = int(value.get("next_seq", 0))
        fresh = [_event_from_dict(r) for r in value.get("events", [])]
        with self._lock:
            self.events.setdefault(node, []).extend(fresh)
            self.snapshots[node] = value
            self.events_missed[node] = (self.events_missed.get(node, 0)
                                        + int(value.get("events_missed", 0)))
        return value

    def pull(self) -> dict[int, dict]:
        """Pull every node; per-node errors are recorded, not raised."""
        results: dict[int, dict] = {}
        for node in range(len(self.ports)):
            try:
                results[node] = self.pull_node(node)
            except (ControlError, OSError) as exc:
                self.pull_errors += 1
                self._drop_client(node)
                results[node] = {"node": node, "error": str(exc)}
        self.pulls += 1
        return results

    # -- periodic scraping -------------------------------------------------------

    def start(self, interval: float = 0.5) -> "TelemetryCollector":
        """Scrape every ``interval`` seconds from a daemon thread."""
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.pull()

        self._thread = threading.Thread(
            target=loop, name="telemetry-collector", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.timeout * len(self.ports) + 5.0)
            self._thread = None

    def drain(self) -> dict[int, dict]:
        """Stop periodic scraping and take one final pull from every node."""
        self.stop()
        return self.pull()

    def close(self) -> None:
        self.stop()
        for node in list(self._clients):
            self._drop_client(node)

    # -- merging -----------------------------------------------------------------

    def merged_events(self) -> list[TraceEvent]:
        """Every node's events on one clock-aligned, causality-clean timeline.

        Each event's node-local wall time is mapped onto the collector's
        monotonic timeline via that node's best clock-offset sample,
        rebased so the earliest event sits at zero, and sorted.  A
        bounded repair pass then shifts whole nodes forward where a
        cross-node ``sent`` still timestamps after its ``delivered`` —
        the estimate's error bound (rtt/2) can exceed a one-way hop, and
        a merged trace that shows effects before causes is worse than
        one a few hundred microseconds off.
        """
        with self._lock:
            merged = [
                TraceEvent(seq=e.seq, t=self.clock_sync.to_local(node, e.t),
                           kind=e.kind, node=e.node,
                           envelope_id=e.envelope_id, trace_id=e.trace_id,
                           parent_id=e.parent_id, data=e.data)
                for node, events in self.events.items()
                for e in events
            ]
        if not merged:
            return []
        self._repair_causality(merged)
        base = min(e.t for e in merged)
        for event in merged:
            event.t -= base
        merged.sort(key=lambda e: (e.t, e.node, e.seq))
        return merged

    @staticmethod
    def _repair_causality(events: list[TraceEvent], passes: int = 4) -> None:
        """Shift nodes forward until no send timestamps after its delivery."""
        for _ in range(passes):
            sent_at: dict[int, tuple[int, float]] = {}
            for e in events:
                if e.kind == "sent" and e.envelope_id is not None \
                        and e.envelope_id not in sent_at:
                    sent_at[e.envelope_id] = (e.node, e.t)
            shift: dict[int, float] = {}
            for e in events:
                if e.kind != "delivered" or e.envelope_id not in sent_at:
                    continue
                src, t_sent = sent_at[e.envelope_id]
                if src != e.node and e.t <= t_sent:
                    need = t_sent - e.t + 1e-6
                    shift[e.node] = max(shift.get(e.node, 0.0), need)
            if not shift:
                return
            for e in events:
                delta = shift.get(e.node)
                if delta is not None:
                    e.t += delta

    def export_chrome(self, path: str | Path) -> dict:
        """Write the merged timeline as a Chrome trace (real microseconds)."""
        return export_chrome_trace(self.merged_events(), str(path),
                                   us_per_t=1e6)

    def summary(self) -> dict[int, dict]:
        """Operator-facing per-node wire counters from the last snapshots."""
        out: dict[int, dict] = {}
        with self._lock:
            for node, snap in sorted(self.snapshots.items()):
                hub = snap.get("hub") or {}
                out[node] = {
                    "frames_in": hub.get("frames_in"),
                    "frames_out": hub.get("frames_out"),
                    "frames_shed": hub.get("frames_shed"),
                    "batches_in": hub.get("batches_in"),
                    "batches_out": hub.get("batches_out"),
                    "queue_peak_bytes": hub.get("queue_peak_bytes"),
                    "heartbeats_suppressed": snap.get("heartbeats_suppressed"),
                    "events": len(self.events.get(node, [])),
                    "events_missed": self.events_missed.get(node, 0),
                    "clock": snap.get("clock"),
                    "stage_latency": hub.get("stage_latency"),
                }
        return out

    def __repr__(self):
        return (f"<TelemetryCollector nodes={len(self.ports)} "
                f"pulls={self.pulls} events="
                f"{sum(len(v) for v in self.events.values())}>")


# -- drivers -------------------------------------------------------------------


def _await_actor_value(cluster: LocalCluster, node: int, address, attr: str,
                       *, timeout: float = 30.0, what: str = "result"):
    box: dict[str, Any] = {}

    def ready() -> bool:
        state = cluster.call(node, "actor_state", address=address, attrs=[attr])
        box["value"] = state[attr]
        return state[attr] is not None

    cluster.wait_until(ready, timeout=timeout, what=what)
    return box["value"]


def _fault_drill(cluster: LocalCluster, victim: int, mode: str,
                 log: Callable[[str], None]) -> dict:
    """Confirm-down → DLQ capture → recovery → redelivery, over real sockets.

    ``stall`` freezes the victim with SIGSTOP (sockets and actor state
    survive), so redelivered probes demonstrably *arrive*: the probe
    counter on the victim ends at the full count.  ``kill`` loses the
    victim's actors; the drill then verifies quarantine, dead-letter
    drain on reconnect, directory re-sync, and that a freshly created
    actor on the respawned node is reachable.
    """
    observer = 0 if victim != 0 else 1
    report: dict[str, Any] = {"mode": mode, "victim": victim,
                              "observer": observer}
    probe = cluster.call(victim, "create_actor", behavior="counter")["address"]

    t0 = time.monotonic()
    if mode == "stall":
        cluster.stall(victim)
        # The victim is frozen but not yet confirmed down: the observer
        # keeps routing to it, so hammer sends at the dead link and
        # check the write path's memory stays bounded.  Pre-watermark,
        # every one of these piled into an unbounded asyncio transport
        # buffer; now drain() backpressure fills the per-link queue,
        # which sheds past its cap instead of growing.
        from .peer import MAX_PENDING_BYTES

        flood = 300
        for index in range(flood):
            cluster.call(observer, "send_to", target=probe,
                         payload=("flood", index, "x" * 2048))
        hub = cluster.call(observer, "snapshot", events=False)["hub"]
        report["stall_send_buffer_bytes"] = hub["send_buffer_bytes"]
        report["stall_frames_shed"] = hub["frames_shed"]
        assert hub["send_buffer_bytes"] <= MAX_PENDING_BYTES, \
            f"send queue exceeded its bound: {hub['send_buffer_bytes']}"
        log(f"flooded stalled node {victim}: observer send buffer "
            f"{hub['send_buffer_bytes']}B (bound {MAX_PENDING_BYTES}B), "
            f"{hub['frames_shed']} frames shed")
    else:
        cluster.kill(victim)

    cluster.wait_until(
        lambda: victim in cluster.call(observer, "status")["confirmed_down"],
        timeout=30.0, what=f"node {victim} confirmed down")
    status = cluster.call(observer, "status")
    report["confirm_seconds"] = round(time.monotonic() - t0, 3)
    report["quarantined_on_observer"] = status["quarantined"]
    assert victim in status["quarantined"], \
        "confirmed-down node was not quarantined"
    log(f"node {victim} confirmed down + quarantined on node {observer} "
        f"after {report['confirm_seconds']}s")

    probes = 5
    for i in range(probes):
        cluster.call(observer, "send_to", target=probe, payload=("probe", i))
    dlq = cluster.call(observer, "dlq")
    report["dlq_captured"] = dlq["pending"]
    assert dlq["pending"] >= probes, \
        f"expected >= {probes} dead letters, saw {dlq['pending']}"
    log(f"{dlq['pending']} probe messages captured in node {observer}'s "
        f"dead-letter queue")

    t1 = time.monotonic()
    if mode == "stall":
        cluster.resume(victim)
    else:
        cluster.respawn(victim)
        cluster.wait_linked(timeout=30.0)

    def drained() -> bool:
        status = cluster.call(observer, "status")
        dlq_state = cluster.call(observer, "dlq")
        # flush() only *schedules* redeliveries (with backoff), so wait
        # for the redelivered counter, not just an empty queue.
        return (victim not in status["confirmed_down"]
                and dlq_state["pending"] == 0
                and dlq_state["redelivered"] >= probes)

    cluster.wait_until(drained, timeout=30.0,
                       what=f"node {victim} recovery + dead-letter redelivery")
    dlq = cluster.call(observer, "dlq")
    report["recover_seconds"] = round(time.monotonic() - t1, 3)
    report["dlq_redelivered"] = dlq["redelivered"]
    log(f"node {victim} recovered after {report['recover_seconds']}s; "
        f"{dlq['redelivered']} dead letters redelivered")

    if mode == "stall":
        # Actor state survived the stall: every redelivered probe landed.
        def all_probes() -> bool:
            state = cluster.call(victim, "actor_state",
                                 address=probe, attrs=["count"])
            return state["count"] >= probes

        cluster.wait_until(all_probes, timeout=10.0,
                           what="all probes redelivered")
        count = cluster.call(victim, "actor_state",
                             address=probe, attrs=["count"])["count"]
        report["probe_count"] = count
        log(f"probe actor on node {victim} received all {count} "
            f"redelivered messages")
    else:
        # State was lost with the process; prove the respawned node works.
        fresh = cluster.call(victim, "create_actor",
                             behavior="counter")["address"]
        cluster.call(observer, "send_to", target=fresh, payload=("alive",))

        def fresh_heard() -> bool:
            state = cluster.call(victim, "actor_state",
                                 address=fresh, attrs=["count"])
            return state["count"] >= 1

        cluster.wait_until(fresh_heard, timeout=10.0,
                           what="respawned node reachable")
        report["respawn_reachable"] = True
        log(f"respawned node {victim} reachable (fresh actor answered)")
    return report


def drive_process_pool(cluster: LocalCluster, *, job_size: int = 4096,
                       grain: int = 64, fanout: int = 4,
                       cost_per_item: float = 0.0005,
                       workers_per_node: int = 2,
                       drill: tuple[str, int] | None = None,
                       log: Callable[[str], None] = print) -> dict:
    """Figure-1 process pool across real node processes (+ optional drill)."""
    n = cluster.n
    report: dict[str, Any] = {"example": "process_pool", "nodes": n}

    pool = cluster.call(0, "create_space", attributes="procpool")["address"]
    cluster.wait_until(
        lambda: all(cluster.call(i, "has_space", address=pool)
                    for i in range(n)),
        what="pool space replicated")

    def add_worker(node: int, index: int):
        return cluster.call(
            node, "create_actor", behavior="pool_worker",
            params={"pool": pool, "grain": grain, "fanout": fanout,
                    "cost_per_item": cost_per_item},
            space=pool,
            visible={"attributes": f"proc/p{index}", "space": pool},
        )["address"]

    workers = {}
    for index in range(n * workers_per_node):
        workers[index] = (index % n, add_worker(index % n, index))
    cluster.wait_until(
        lambda: all(
            len(cluster.call(i, "resolve", pattern="**", space=pool))
            == len(workers)
            for i in range(n)),
        what="worker visibility replicated")
    report["workers"] = len(workers)
    log(f"pool ready: {len(workers)} workers visible on all {n} nodes")

    def run_job(tag: str) -> dict:
        job = Job(0, job_size)
        t0 = time.monotonic()
        client = cluster.call(
            0, "create_actor", behavior="pool_client",
            params={"pool": pool, "lo": job.lo, "hi": job.hi})["address"]
        result = _await_actor_value(cluster, 0, client, "result",
                                    what=f"{tag} pool result")
        elapsed = time.monotonic() - t0
        expected = expected_result(job)
        assert result == expected, \
            f"{tag}: pool computed {result}, expected {expected}"
        log(f"{tag}: job(0,{job_size}) -> {result} (correct) "
            f"in {elapsed:.2f}s wall")
        return {"result": result, "expected": expected, "correct": True,
                "wall_seconds": round(elapsed, 3)}

    report["first_run"] = run_job("first run")
    if drill is not None:
        mode, victim = drill
        report["drill"] = _fault_drill(cluster, victim, mode, log)
        if mode == "kill":
            # SIGKILL lost the victim's workers, but the replicated
            # directory (rebuilt on respawn via bus re-sync) still
            # advertises them — pattern sends would route to ghosts.
            # Operationally: retire the dead registrations, provision
            # fresh processors.  The paper's open-system story — the
            # pool membership changes, clients never notice.
            observer = 0 if victim != 0 else 1
            next_index = max(workers) + 1
            dead = [(index, address)
                    for index, (node, address) in sorted(workers.items())
                    if node == victim]
            # Retire EVERY ghost before provisioning any replacement:
            # the respawned process restarts actor serials at zero, so a
            # replacement can be allocated the very address a dead
            # worker's registration still holds — retiring that ghost
            # after the fact would wipe the replacement's entry too.
            for index, address in dead:
                cluster.call(observer, "make_invisible",
                             target=address, space=pool)
                workers.pop(index)
            for _ in dead:
                workers[next_index] = (victim, add_worker(victim, next_index))
                next_index += 1
            cluster.wait_until(
                lambda: all(
                    sorted(cluster.call(i, "resolve", pattern="**",
                                        space=pool))
                    == sorted(a for _, a in workers.values())
                    for i in range(n)),
                what="pool membership after re-provisioning")
            log(f"retired node {victim}'s dead workers, provisioned "
                f"{workers_per_node} replacements")
        report["post_drill_run"] = run_job("post-drill run")
    return report


def drive_replicated(cluster: LocalCluster, *, requests: int = 8,
                     drill: tuple[str, int] | None = None,
                     log: Callable[[str], None] = print) -> dict:
    """A replica-per-node service; broadcasts must reach every replica."""
    n = cluster.n
    report: dict[str, Any] = {"example": "replicated", "nodes": n}

    service = cluster.call(0, "create_space", attributes="service")["address"]
    cluster.wait_until(
        lambda: all(cluster.call(i, "has_space", address=service)
                    for i in range(n)),
        what="service space replicated")
    replicas = []
    for node in range(n):
        address = cluster.call(
            node, "create_actor", behavior="replica",
            params={"name": f"r{node}"}, space=service,
            visible={"attributes": f"replica/r{node}", "space": service},
        )["address"]
        replicas.append(address)
    cluster.wait_until(
        lambda: all(
            len(cluster.call(i, "resolve", pattern="**", space=service)) == n
            for i in range(n)),
        what="replica visibility replicated")
    collector = cluster.call(0, "create_actor", behavior="counter",
                             params={"keep": 64})["address"]
    log(f"service ready: {n} replicas")

    for i in range(requests):
        cluster.call(0, "broadcast", destination=Destination("**", service),
                     payload=("request", i), reply_to=collector)
    expected_acks = requests * n

    def all_acked() -> bool:
        state = cluster.call(0, "actor_state", address=collector,
                             attrs=["count"])
        return state["count"] >= expected_acks

    cluster.wait_until(all_acked, timeout=30.0, what="broadcast acks")
    per_replica = [
        cluster.call(node, "actor_state", address=replicas[node],
                     attrs=["count"])["count"]
        for node in range(n)
    ]
    assert per_replica == [requests] * n, per_replica
    report.update({"requests": requests, "acks": expected_acks,
                   "per_replica": per_replica, "correct": True})
    log(f"{requests} broadcasts -> {expected_acks} acks "
        f"({requests} per replica on every node)")
    if drill is not None:
        mode, victim = drill
        report["drill"] = _fault_drill(cluster, victim, mode, log)
    return report


DRIVERS: dict[str, Callable[..., dict]] = {
    "process_pool": drive_process_pool,
    "replicated": drive_replicated,
}


# -- sim-as-oracle conformance over TCP ---------------------------------------


_ATTR_NAMES = ["alpha", "beta", "gamma", "delta", "svc", "db", "gui", "proc"]


def _conformance_script(seed: int, ops: int) -> list[dict]:
    """A deterministic creation/visibility script (seed-derived)."""
    rng = np.random.default_rng(seed)
    script: list[dict] = []
    spaces = 0  # count of created spaces; references are by creation index
    actors = 0
    for _ in range(ops):
        roll = float(rng.random())
        if roll < 0.4 or spaces == 0:
            script.append({
                "op": "create_space",
                "attr": str(rng.choice(_ATTR_NAMES)),
                "parent": int(rng.integers(-1, spaces)),  # -1 = root
            })
            spaces += 1
        elif roll < 0.8:
            script.append({
                "op": "create_actor",
                "attr": str(rng.choice(_ATTR_NAMES)),
                "space": int(rng.integers(-1, spaces)),
            })
            actors += 1
        else:
            script.append({
                "op": "make_visible",
                "actor": int(rng.integers(0, actors)) if actors else -1,
                "attr": str(rng.choice(_ATTR_NAMES)),
                "space": int(rng.integers(-1, spaces)),
            })
    queries = ["*", "**"] + _ATTR_NAMES[:4]
    script.append({"op": "queries", "patterns": queries,
                   "spaces": list(range(-1, spaces))})
    return script


def _apply_to_oracle(system, script: list[dict]):
    from repro.net import registry

    root = system.root_space
    spaces = [root]
    actors = []
    for step in script:
        if step["op"] == "create_space":
            parent = root if step["parent"] < 0 else spaces[1:][step["parent"]]
            spaces.append(system.create_space(
                node=0, attributes=step["attr"], parent=parent))
        elif step["op"] == "create_actor":
            space = root if step["space"] < 0 else spaces[1:][step["space"]]
            address = system.create_actor(
                registry.build_behavior("counter", {}), node=0)
            system.make_visible(address, step["attr"], space, node=0)
            actors.append(address)
        elif step["op"] == "make_visible":
            if step["actor"] < 0:
                continue
            space = root if step["space"] < 0 else spaces[1:][step["space"]]
            system.make_visible(actors[step["actor"]], step["attr"],
                                space, node=0)
    system.run()
    final = script[-1]
    resolves = {}
    for space_index in final["spaces"]:
        scope = root if space_index < 0 else spaces[1:][space_index]
        for pattern in final["patterns"]:
            resolves[(space_index, pattern)] = system.resolve(
                pattern, scope, node=0)
    return system.coordinators[0].directory.snapshot(), resolves


def _replication_barrier(cluster: LocalCluster, *,
                         nodes: list[int] | None = None,
                         timeout: float = 20.0,
                         what: str = "visibility ops replicated") -> None:
    """Block until every (listed) node has applied what the first has.

    Unsharded, one global cursor suffices.  Sharded, a summed
    ``applied_seq`` is meaningless across nodes mid-flight (two nodes
    can hold the same total while trailing on *different* shards), so
    the barrier compares each shard's apply cursor separately.
    """
    members = list(nodes) if nodes is not None else list(range(cluster.n))
    status0 = cluster.call(members[0], "status")
    shards = status0.get("shards")
    if shards is None:
        applied = status0["applied_seq"]
        cluster.wait_until(
            lambda: all(cluster.call(i, "status")["applied_seq"] >= applied
                        for i in members),
            timeout=timeout, what=what)
        return
    floors = {k: info["applied"] for k, info in shards.items()}

    def caught_up() -> bool:
        for node in members:
            node_shards = cluster.call(node, "status")["shards"]
            for k, floor in floors.items():
                if node_shards[k]["applied"] < floor:
                    return False
        return True

    cluster.wait_until(caught_up, timeout=timeout, what=what)


def _apply_to_cluster(cluster: LocalCluster, script: list[dict]):
    spaces: list = []  # root is addressed implicitly (space=None)
    actors: list = []

    def scope_of(index: int):
        return None if index < 0 else spaces[index]

    for step in script:
        if step["op"] == "create_space":
            spaces.append(cluster.call(
                0, "create_space", attributes=step["attr"],
                parent=scope_of(step["parent"]))["address"])
        elif step["op"] == "create_actor":
            address = cluster.call(
                0, "create_actor", behavior="counter",
                visible={"attributes": step["attr"],
                         "space": scope_of(step["space"])},
            )["address"]
            actors.append(address)
        elif step["op"] == "make_visible":
            if step["actor"] < 0:
                continue
            cluster.call(0, "make_visible", target=actors[step["actor"]],
                         attributes=step["attr"],
                         space=scope_of(step["space"]))

    # Barrier: every replica has applied exactly what node 0 applied.
    _replication_barrier(cluster)

    final = script[-1]
    snapshots = {i: cluster.call(i, "directory")["snapshot"]
                 for i in range(cluster.n)}
    resolves = {i: {} for i in range(cluster.n)}
    for node in range(cluster.n):
        for space_index in final["spaces"]:
            for pattern in final["patterns"]:
                resolves[node][(space_index, pattern)] = cluster.call(
                    node, "resolve", pattern=pattern,
                    space=scope_of(space_index))
    return snapshots, resolves


def run_tcp_conformance(seeds: list[int], *, nodes: int = 3, ops: int = 10,
                        shards: int = 1,
                        out_dir: str | Path | None = None,
                        log: Callable[[str], None] = print) -> dict:
    """Diff real TCP clusters against the single-process oracle.

    Returns ``{"seeds": ..., "divergences": [...]}`` — empty divergences
    means every node's directory replica and every pattern resolution
    matched the simulator exactly.

    With ``shards > 1`` both sides run the partitioned visibility plane.
    The cluster keeps the default spread seat assignment (shard k's
    sequencer on node k mod n), so cross-shard submissions genuinely
    traverse the SHARD_FWD wire path; the quiescent end state is
    interleaving-independent, so it still has to equal the simulator's.
    """
    from repro.runtime.system import ActorSpaceSystem

    sim_kw: dict[str, Any] = {"shards": shards} if shards > 1 else {}
    divergences: list[dict] = []
    for seed in seeds:
        script = _conformance_script(seed, ops)
        oracle = ActorSpaceSystem(seed=seed, **sim_kw)
        oracle_snapshot, oracle_resolves = _apply_to_oracle(oracle, script)

        cluster = LocalCluster(nodes, seed=seed, out_dir=out_dir,
                               shards=shards)
        try:
            cluster.start()
            snapshots, resolves = _apply_to_cluster(cluster, script)
        finally:
            cluster.shutdown()

        for node in range(nodes):
            if snapshots[node] != oracle_snapshot:
                divergences.append({
                    "seed": seed, "node": node, "kind": "directory",
                    "cluster": _jsonable(snapshots[node]),
                    "oracle": _jsonable(oracle_snapshot),
                })
            for key, expected in oracle_resolves.items():
                got = resolves[node].get(key)
                if got != expected:
                    divergences.append({
                        "seed": seed, "node": node, "kind": "resolve",
                        "query": _jsonable(key),
                        "cluster": _jsonable(got),
                        "oracle": _jsonable(expected),
                    })
        verdict = "MATCH" if not divergences else "DIVERGED"
        log(f"seed {seed}: tcp cluster vs oracle -> {verdict} "
            f"({len(script) - 1} ops, {nodes} nodes"
            + (f", {shards} shards)" if shards > 1 else ")"))
        if divergences:
            break  # first divergence is the story; don't pile on
    return {"seeds": list(seeds), "nodes": nodes, "ops": ops,
            "shards": shards, "divergences": divergences}


# -- durability drill ----------------------------------------------------------


def run_durability_drill(cluster: LocalCluster, data_dir: str | Path, *,
                         wave: int = 25, probes: int = 5,
                         log: Callable[[str], None] = print) -> dict:
    """SIGKILL the whole cluster mid-traffic; prove recovery from disk.

    The script: deliver a verified message wave, park ``probes`` dead
    letters for a downed victim, then SIGKILL every process (no orderly
    shutdown, no final snapshot — disk is all the next incarnation
    gets).  Recovery is held to three independent referees:

    1. **offline** — the persisted log passes the conformance oracle and
       replays to a byte-identical digest twice; the replayed directory
       equals the pre-crash directory;
    2. **online** — every restarted node's directory equals the
       pre-crash directory, the dead letters are re-adopted exactly, and
       conservation closes: delivered + pending + expired == offered;
    3. **forward** — fresh ops sequence cleanly after recovery (origin
       seq resync: ghost re-registration would dedup them into the
       void), and a second crash of node 0 exercises snapshot + suffix
       replay rather than full-log replay.
    """
    n = cluster.n
    victim = n - 1
    report: dict[str, Any] = {"drill": "durability", "nodes": n,
                              "wave": wave, "probes": probes,
                              "data_dir": str(data_dir)}

    # Traffic substrate: one counter per node, visible in the root space.
    counters = {}
    for node in range(n):
        counters[node] = cluster.call(
            node, "create_actor", behavior="counter",
            visible={"attributes": f"dur/c{node}"})["address"]
    for index in range(wave):
        for node in range(n):
            cluster.call(0, "send_to", target=counters[node],
                         payload=("wave", index))

    def wave_landed() -> bool:
        return all(
            cluster.call(node, "actor_state", address=counters[node],
                         attrs=["count"])["count"] >= wave
            for node in range(n))

    cluster.wait_until(wave_landed, timeout=30.0, what="wave delivery")
    delivered = wave * n
    log(f"wave delivered: {delivered} messages ({wave} per node)")

    applied = cluster.call(0, "status")["applied_seq"]
    cluster.wait_until(
        lambda: all(cluster.call(i, "status")["applied_seq"] >= applied
                    for i in range(n)),
        what="visibility convergence before the crash")
    pre_dir = cluster.call(0, "directory")["snapshot"]
    report["pre_kill_applied_seq"] = applied

    # Park letters: confirm the victim down, then aim probes at it.
    cluster.kill(victim)
    cluster.wait_until(
        lambda: victim in cluster.call(0, "status")["confirmed_down"],
        timeout=30.0, what=f"node {victim} confirmed down")
    for i in range(probes):
        cluster.call(0, "send_to", target=counters[victim],
                     payload=("probe", i))
    cluster.wait_until(
        lambda: cluster.call(0, "dlq")["pending"] >= probes,
        timeout=10.0, what="probe letters captured")
    dlq = cluster.call(0, "dlq")
    assert dlq["pending"] == probes, dlq
    log(f"{probes} letters parked in node 0's dead-letter queue")

    cluster.kill_all()
    log("all nodes SIGKILLed")

    # Referee 1 (offline): oracle over the persisted log + determinism.
    from repro.check.logcheck import check_recovered
    from repro.store.node_store import load_data_dir
    from repro.store.replay import replay_recovered

    node0_dir = str(Path(data_dir) / "node0")
    recovered = load_data_dir(node0_dir)
    assert recovered.report.clean, recovered.report.to_dict()
    problems = check_recovered(recovered)
    assert not problems, problems[:5]
    _, first = replay_recovered(recovered)
    replayer, second = replay_recovered(load_data_dir(node0_dir))
    assert first["digest"] == second["digest"], (first, second)
    assert replayer.directory.snapshot() == pre_dir, \
        "offline replay directory differs from the pre-crash directory"
    report["offline"] = {"digest": first["digest"],
                         "ops_applied": first["ops_applied"]}
    log(f"offline: log passes the oracle, replay digest stable over "
        f"{first['ops_applied']} ops ({first['digest'][:12]}...)")

    # Referee 2 (online): restart the survivors only — recovery must
    # come from disk, not from any live peer.
    survivors = list(range(n - 1))
    cluster.respawn_all(nodes=survivors)
    cluster.wait_until(
        lambda: all(cluster.call(node, "status")["applied_seq"] >= applied
                    for node in survivors),
        timeout=30.0, what="survivor recovery from disk")
    for node in survivors:
        status = cluster.call(node, "status")
        assert status["recovery"] is not None, f"node {node} did not recover"
        directory = cluster.call(node, "directory")["snapshot"]
        assert directory == pre_dir, \
            f"node {node} directory diverged after recovery"
    dlq = cluster.call(0, "dlq")
    assert dlq["recovered"] == probes and dlq["pending"] == probes, dlq
    offered = delivered + probes
    assert delivered + dlq["pending"] + dlq["expired"] == offered, dlq
    report["recovered_dlq"] = dict(dlq)
    log(f"survivors recovered: directories match pre-crash state; "
        f"conservation closes (delivered {delivered} + pending "
        f"{dlq['pending']} + expired {dlq['expired']} == offered {offered})")

    # The victim returns on its own data dir; parked letters drain to it.
    cluster.respawn(victim)
    cluster.wait_linked(timeout=30.0)

    def letters_drained() -> bool:
        state = cluster.call(0, "dlq")
        return state["pending"] == 0 and state["redelivered"] >= probes

    cluster.wait_until(letters_drained, timeout=30.0,
                       what="dead-letter drain to the recovered victim")
    dlq = cluster.call(0, "dlq")
    report["final_dlq"] = dict(dlq)
    log(f"victim recovered; {dlq['redelivered']} letters redelivered, "
        f"0 pending")

    # Referee 3 (forward): fresh ops after recovery.
    fresh_space = cluster.call(0, "create_space",
                               attributes="post-crash")["address"]
    cluster.wait_until(
        lambda: all(cluster.call(i, "has_space", address=fresh_space)
                    for i in range(n)),
        what="post-recovery space replication")
    fresh = cluster.call(victim, "create_actor", behavior="counter",
                         visible={"attributes": "post-crash/alive",
                                  "space": fresh_space})["address"]
    cluster.call(0, "send_to", target=fresh, payload=("alive",))
    cluster.wait_until(
        lambda: cluster.call(victim, "actor_state", address=fresh,
                             attrs=["count"])["count"] >= 1,
        timeout=10.0, what="post-recovery liveness")
    log("post-recovery traffic flows (fresh space + actor on the victim)")

    # Second cycle for node 0: its first recovery wrote a fresh
    # snapshot, so this crash exercises snapshot + suffix replay.
    applied2 = cluster.call(0, "status")["applied_seq"]
    cluster.kill(0)
    cluster.respawn(0)
    cluster.wait_until(
        lambda: cluster.call(0, "status")["applied_seq"] >= applied2,
        timeout=30.0, what="second recovery of node 0")
    status = cluster.call(0, "status")
    assert status["recovery"]["snapshot_seq"] >= 0, status["recovery"]
    assert (cluster.call(0, "directory")["snapshot"]
            == cluster.call(1, "directory")["snapshot"])
    report["second_recovery"] = status["recovery"]
    log(f"node 0 recovered again from snapshot "
        f"{status['recovery']['snapshot_seq']} + "
        f"{status['recovery']['ops_replayed']} replayed ops")
    return report


def durability_main(argv: list[str]) -> int:
    """``python -m repro durability`` — total-crash recovery drill."""
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro durability",
        description="SIGKILL a whole TCP cluster mid-traffic and prove it "
                    "recovers from its data directories with zero loss.")
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--wave", type=int, default=25,
                        help="verified messages per node before the crash")
    parser.add_argument("--probes", type=int, default=5,
                        help="dead letters parked before the crash")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--heartbeat", type=float, default=0.2)
    parser.add_argument("--fsync", default="commit",
                        choices=["commit", "batch", "never"])
    parser.add_argument("--out", default=None,
                        help="directory for data dirs, logs, durability.json")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="export the recovered cluster's merged Chrome "
                             "trace to PATH")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if not loopback_available():
        print("durability: loopback sockets unavailable on this platform; "
              "skipping", file=sys.stderr)
        return 0
    if args.nodes < 2:
        parser.error("--nodes must be >= 2")

    def log(text: str) -> None:
        print(f"[durability] {text}", flush=True)

    if args.out is not None:
        data_dir = Path(args.out) / "data"
    else:
        data_dir = Path(tempfile.mkdtemp(prefix="repro-durability-"))
    cluster = LocalCluster(
        args.nodes, seed=args.seed, heartbeat=args.heartbeat,
        out_dir=args.out, verbose=args.verbose, log=log, data_dir=data_dir,
        # Periodic snapshots stay out of the way so the drill's offline
        # oracle sees the full from-genesis log; snapshotting itself is
        # exercised by the recovery-time and orderly-shutdown snapshots.
        node_args=["--fsync", args.fsync, "--snapshot-interval", "600"])
    collector: TelemetryCollector | None = None
    try:
        cluster.start()
        report = run_durability_drill(cluster, data_dir, wave=args.wave,
                                      probes=args.probes, log=log)
        collector = TelemetryCollector.for_cluster(cluster)
        collector.pull()
        if args.trace_out is not None:
            merged = collector.merged_events()
            trace = export_chrome_trace(merged, args.trace_out, us_per_t=1e6)
            problems = validate_chrome_trace(trace)
            if problems:
                log(f"recovered-cluster trace INVALID: {problems[:5]}")
                return 1
            log(f"recovered-cluster merged trace: {len(merged)} events -> "
                f"{args.trace_out}")
        report["telemetry"] = collector.summary()
    finally:
        if collector is not None:
            collector.close()
        cluster.shutdown()
    if args.out is not None:
        path = Path(args.out) / "durability.json"
        path.write_text(json.dumps(_jsonable(report), indent=2))
        log(f"report written to {path}")
    log("durability: OK")
    return 0


# -- shard drill ---------------------------------------------------------------


def _probe_shard_atoms(shards: int) -> dict[int, str]:
    """One root attribute atom per shard, probed against the stable hash."""
    from repro.shard.map import ShardMap

    smap = ShardMap(shards)
    atoms: dict[int, str] = {}
    index = 0
    while len(atoms) < shards:
        atoms.setdefault(smap.owner_of(f"sh{index}"), f"sh{index}")
        index += 1
    return atoms


def run_shard_drill(cluster: LocalCluster, *, wave: int = 25, burst: int = 16,
                    rebalance: bool = True, kill_sequencers: bool = False,
                    log: Callable[[str], None] = print) -> dict:
    """Drive the partitioned visibility plane through its failure modes.

    The script: one space per shard (root atoms probed so every shard
    owns one), a counter actor per space, then interleaved message waves
    and per-shard visibility bursts from every node.  Mid-drill the
    launcher optionally (a) moves one shard's sequencer seat to another
    node *live* (``rebalance``) and (b) SIGKILLs a seat-holding node,
    waits for per-shard failover, and proves the seats return home on
    respawn (``kill_sequencers``).  The exit criteria are absolute:
    every node's directory replica is identical, per-shard resolutions
    agree everywhere, and message conservation closes with zero silent
    loss — delivered + pending + expired == offered.
    """
    n, shards = cluster.n, cluster.shards
    report: dict[str, Any] = {"drill": "shard", "nodes": n, "shards": shards,
                              "wave": wave, "burst": burst}
    atoms = _probe_shard_atoms(shards)

    spaces: dict[int, Any] = {}
    counters: dict[int, Any] = {}
    for k in sorted(atoms):
        spaces[k] = cluster.call(
            0, "create_space", attributes=atoms[k])["address"]
    cluster.wait_until(
        lambda: all(cluster.call(node, "has_space", address=spaces[k])
                    for node in range(n) for k in spaces),
        what="shard spaces replicated")
    for k in sorted(atoms):
        counters[k] = cluster.call(
            0, "create_actor", behavior="counter",
            visible={"attributes": f"{atoms[k]}/c", "space": spaces[k]},
        )["address"]
    log(f"{shards} spaces up, one per shard "
        f"(root atoms {[atoms[k] for k in sorted(atoms)]})")

    offered = 0
    sent: dict[int, int] = {k: 0 for k in spaces}

    def traffic(tag: str, senders: list[int] | None = None) -> None:
        """One wave of messages plus a visibility burst on every shard."""
        nonlocal offered
        live = senders if senders is not None else list(range(n))
        for index in range(wave):
            for k in sorted(spaces):
                cluster.call(0, "send_to", target=counters[k],
                             payload=(tag, index))
                sent[k] += 1
                offered += 1
        for node in live:
            for k in sorted(spaces):
                cluster.call(node, "vis_burst", target=counters[k],
                             space=spaces[k], count=burst,
                             prefix=f"{tag}-n{node}")

    traffic("pre")
    _replication_barrier(cluster, what="pre-drill convergence")
    seats = cluster.call(0, "status")["shards"]
    report["initial_seats"] = {
        k: info["sequencer"] for k, info in sorted(seats.items())}
    log(f"phase 1 traffic converged; seats {report['initial_seats']}")

    if rebalance:
        moved = 1 % shards
        old = seats[moved]["sequencer"]
        new = (old + 1) % n
        # Every node adopts the same assignment (bumping its local map
        # to the same version) — the launcher plays gossip here, exactly
        # as an operator pushing a new map through the control plane.
        versions = [
            cluster.call(node, "rebalance", shard=moved, seat=new)["version"]
            for node in range(n)]
        assert len(set(versions)) == 1, versions
        traffic("post-rebalance")
        _replication_barrier(cluster, what="post-rebalance convergence")
        for node in range(n):
            status = cluster.call(node, "status")
            assert status["shards"][moved]["sequencer"] == new, \
                f"node {node} did not adopt the new seat for shard {moved}"
            assert status["shard_map_version"] == versions[0], status
        report["rebalance"] = {"shard": moved, "from": old, "to": new,
                               "map_version": versions[0]}
        log(f"shard {moved} seat moved live: node {old} -> node {new} "
            f"(map v{versions[0]}); traffic kept flowing")

    if kill_sequencers:
        seats = cluster.call(0, "status")["shards"]
        holders: dict[int, list[int]] = {}
        for k, info in seats.items():
            if info["sequencer"] != 0:
                holders.setdefault(info["sequencer"], []).append(k)
        assert holders, "no non-zero seat holder to kill"
        victim = max(holders, key=lambda node: (len(holders[node]), node))
        victim_shards = sorted(holders[victim])
        survivors = [node for node in range(n) if node != victim]
        cluster.kill(victim)

        def failed_over() -> bool:
            for node in survivors:
                node_shards = cluster.call(node, "status")["shards"]
                if any(node_shards[k]["sequencer"] == victim
                       for k in victim_shards):
                    return False
            return True

        cluster.wait_until(failed_over, timeout=30.0,
                           what=f"failover of node {victim}'s shard seats")
        interim = {k: cluster.call(0, "status")["shards"][k]["sequencer"]
                   for k in victim_shards}
        log(f"node {victim} killed; shards {victim_shards} failed over "
            f"to {interim}")
        traffic("failover", senders=survivors)
        _replication_barrier(cluster, nodes=survivors,
                             what="convergence under failover")

        cluster.respawn(victim)
        cluster.wait_linked(timeout=30.0)
        # The respawned node rejoined with the *spawn-time* shard map;
        # gossip it the current assignment so any rebalanced seat stays
        # where the operator put it.
        manifest = cluster.call(0, "shard_map")["map"]
        cluster.call(victim, "shard_map", manifest=manifest)

        def seats_home() -> bool:
            for node in range(n):
                node_shards = cluster.call(node, "status")["shards"]
                if any(info["sequencer"] != info["home"]
                       for info in node_shards.values()):
                    return False
            return True

        cluster.wait_until(seats_home, timeout=30.0,
                           what="seats returning home after respawn")
        traffic("post-respawn")
        report["kill"] = {"victim": victim, "shards": victim_shards,
                          "interim": interim}
        log(f"node {victim} respawned; every shard seat back home")

    # Conservation: every offered message is delivered (the counters all
    # live on node 0, which never dies) and none arrives twice.
    def all_landed() -> bool:
        return all(
            cluster.call(0, "actor_state", address=counters[k],
                         attrs=["count"])["count"] >= sent[k]
            for k in counters)

    cluster.wait_until(all_landed, timeout=30.0, what="message conservation")
    delivered = sum(
        cluster.call(0, "actor_state", address=counters[k],
                     attrs=["count"])["count"]
        for k in counters)
    dlq = cluster.call(0, "dlq")
    assert delivered + dlq["pending"] + dlq["expired"] == offered, \
        (delivered, dict(dlq), offered)
    assert delivered == offered, \
        f"duplicate or lost deliveries: {delivered} != {offered}"
    report["conservation"] = {"offered": offered, "delivered": delivered,
                              "pending": dlq["pending"],
                              "expired": dlq["expired"]}
    log(f"conservation closes: delivered {delivered} + pending "
        f"{dlq['pending']} + expired {dlq['expired']} == offered {offered}")

    # Coherence: identical directory replicas and per-shard resolutions.
    _replication_barrier(cluster, what="final convergence")
    snapshots = {node: cluster.call(node, "directory")["snapshot"]
                 for node in range(n)}
    for node in range(1, n):
        assert snapshots[node] == snapshots[0], \
            f"node {node} directory diverged from node 0"
    for k in sorted(spaces):
        resolutions = {
            node: sorted(cluster.call(node, "resolve", pattern="**",
                                      space=spaces[k]))
            for node in range(n)}
        assert all(r == resolutions[0] for r in resolutions.values()), \
            f"shard {k} resolutions diverged: {resolutions}"
        assert counters[k] in resolutions[0], \
            f"shard {k} counter missing from its space"
    report["final_seats"] = {
        k: info["sequencer"]
        for k, info in sorted(cluster.call(0, "status")["shards"].items())}
    report["coherent"] = True
    log(f"all {n} directory replicas identical; per-shard resolutions "
        f"agree on every node")
    return report


def shard_main(argv: list[str]) -> int:
    """``python -m repro shard`` — partitioned visibility-plane drill."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro shard",
        description="Drive a sharded TCP cluster: per-shard sequencing "
                    "load, an optional live seat rebalance and per-shard "
                    "sequencer-kill failover, holding directory coherence "
                    "and zero silent message loss throughout.")
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--wave", type=int, default=25,
                        help="messages per shard per traffic phase")
    parser.add_argument("--burst", type=int, default=16,
                        help="visibility ops per shard per node per phase")
    parser.add_argument("--rebalance", action="store_true",
                        help="move one shard's sequencer seat live mid-drill")
    parser.add_argument("--kill-sequencers", action="store_true",
                        help="SIGKILL a seat-holding node; verify per-shard "
                             "failover and the seats returning home")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--heartbeat", type=float, default=0.2)
    parser.add_argument("--out", default=None,
                        help="directory for logs, snapshots, shard.json")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if not loopback_available():
        print("shard: loopback sockets unavailable on this platform; "
              "skipping", file=sys.stderr)
        return 0
    if args.nodes < 2:
        parser.error("--nodes must be >= 2")
    if args.shards < 2:
        parser.error("--shards must be >= 2")

    def log(text: str) -> None:
        print(f"[shard] {text}", flush=True)

    cluster = LocalCluster(
        args.nodes, seed=args.seed, heartbeat=args.heartbeat,
        out_dir=args.out, verbose=args.verbose, shards=args.shards, log=log)
    try:
        cluster.start()
        report = run_shard_drill(
            cluster, wave=args.wave, burst=args.burst,
            rebalance=args.rebalance,
            kill_sequencers=args.kill_sequencers, log=log)
    finally:
        cluster.shutdown()
    if args.out is not None:
        path = Path(args.out) / "shard.json"
        path.write_text(json.dumps(_jsonable(report), indent=2))
        log(f"report written to {path}")
    log("shard: OK")
    return 0


# -- CLI entry points ----------------------------------------------------------


def serve_main(argv: list[str]) -> int:
    """``python -m repro serve`` — run one node process."""
    import argparse
    import asyncio

    from .runtime import NodeRuntime, maybe_install_uvloop

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run one ActorSpace node over TCP (normally spawned "
                    "by `python -m repro cluster`).")
    parser.add_argument("--node", type=int, required=True)
    parser.add_argument("--ports", required=True,
                        help="comma-separated port list, one per node id")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--cluster-id", default="actorspace")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--heartbeat", type=float, default=0.2)
    parser.add_argument("--suspect-after", type=int, default=2)
    parser.add_argument("--confirm-after", type=int, default=4)
    parser.add_argument("--shards", type=int, default=1,
                        help="visibility-plane shard count (>1 partitions "
                             "the directory across per-shard sequencers)")
    parser.add_argument("--shard-sequencer", type=int, default=None,
                        metavar="NODE",
                        help="home every shard's sequencer on NODE instead "
                             "of spreading seats round-robin")
    parser.add_argument("--mailbox-capacity", type=int, default=None,
                        help="per-actor invocation-port bound (0 = unbounded; "
                             "default: the bounded-but-roomy runtime default)")
    parser.add_argument("--mailbox-policy", default="drop-oldest",
                        choices=["drop-oldest", "drop-newest", "suspend-sender"],
                        help="what a full mailbox does with the overflow")
    parser.add_argument("--admission-rate", type=float, default=None,
                        help="per-route admitted envelopes/second "
                             "(default: no rate limiting)")
    parser.add_argument("--breaker-threshold", type=int, default=None,
                        help="mailbox sheds within 1s that trip the per-"
                             "destination circuit breaker (default: off)")
    parser.add_argument("--credit-window", type=int, default=None,
                        help="data frames a peer may have in flight before "
                             "the sender pauses (0 = no credit gating)")
    parser.add_argument("--data-dir", default=None,
                        help="durable data directory: persist the visibility "
                             "log + dead letters here and recover from it at "
                             "startup (default: no durability)")
    parser.add_argument("--fsync", default="commit",
                        choices=["commit", "batch", "never"],
                        help="store durability policy (see repro.store)")
    parser.add_argument("--snapshot-interval", type=float, default=30.0,
                        help="seconds between directory snapshots "
                             "(0 disables periodic snapshots)")
    parser.add_argument("--no-uvloop", action="store_true",
                        help="stay on stdlib asyncio even if uvloop exists")
    parser.add_argument("--no-trace", action="store_true",
                        help="disable the flight-recorder event log "
                             "(benchmarks: removes per-message trace cost)")
    parser.add_argument("--trace-jsonl", default=None,
                        help="stream flight-recorder events to this JSONL "
                             "file (flushed per event; survives SIGKILL)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if not args.no_uvloop:
        maybe_install_uvloop()
    ports = {i: int(p) for i, p in enumerate(args.ports.split(","))}
    if args.node not in ports:
        parser.error(f"--node {args.node} has no entry in --ports")
    overload_kw: dict = {"mailbox_policy": args.mailbox_policy}
    if args.mailbox_capacity is not None:
        # 0 means explicitly unbounded; unset keeps the runtime default.
        overload_kw["mailbox_capacity"] = args.mailbox_capacity or None
    if args.admission_rate is not None:
        overload_kw["admission_rate"] = args.admission_rate
    if args.breaker_threshold is not None:
        overload_kw["breaker_threshold"] = args.breaker_threshold
    if args.credit_window is not None:
        overload_kw["credit_window"] = args.credit_window
    runtime = NodeRuntime(
        args.node, ports, host=args.host, cluster_id=args.cluster_id,
        seed=args.seed, heartbeat_interval=args.heartbeat,
        suspect_after=args.suspect_after, confirm_after=args.confirm_after,
        trace=not args.no_trace, trace_jsonl=args.trace_jsonl,
        quiet=not args.verbose, data_dir=args.data_dir, fsync=args.fsync,
        snapshot_interval=args.snapshot_interval, shards=args.shards,
        shard_sequencer=args.shard_sequencer, **overload_kw)

    async def main() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, runtime.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass
        await runtime.serve()

    profile_dir = os.environ.get("REPRO_NODE_PROFILE")
    if profile_dir:
        # Whole-process profile per node (perf forensics): dump pstats
        # to <dir>/node<N>.pstats at clean shutdown.
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            asyncio.run(main())
        finally:
            profiler.disable()
            Path(profile_dir).mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(str(Path(profile_dir) / f"node{args.node}.pstats"))
        return 0
    asyncio.run(main())
    return 0


def cluster_main(argv: list[str]) -> int:
    """``python -m repro cluster`` — spawn N nodes, drive an example."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Spawn N localhost node processes and run a shipped "
                    "example across them over real TCP sockets.")
    parser.add_argument("example", choices=sorted(DRIVERS),
                        help="which example to drive")
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--heartbeat", type=float, default=0.2)
    parser.add_argument("--job", type=int, default=4096,
                        help="process_pool job size")
    parser.add_argument("--workers-per-node", type=int, default=2)
    parser.add_argument("--requests", type=int, default=8,
                        help="replicated broadcast count")
    parser.add_argument("--stall", type=int, metavar="NODE", default=None,
                        help="mid-run SIGSTOP/SIGCONT drill on NODE")
    parser.add_argument("--kill", type=int, metavar="NODE", default=None,
                        help="mid-run SIGKILL + respawn drill on NODE")
    parser.add_argument("--out", default=None,
                        help="directory for logs, snapshots, report.json")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="export the merged, clock-aligned cluster "
                             "Chrome trace to PATH")
    parser.add_argument("--telemetry-interval", type=float, default=0.5,
                        help="collector scrape period in seconds")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if not loopback_available():
        print("cluster: loopback sockets unavailable on this platform; "
              "skipping", file=sys.stderr)
        return 0
    if args.stall is not None and args.kill is not None:
        parser.error("--stall and --kill are mutually exclusive")
    drill = None
    if args.stall is not None:
        drill = ("stall", args.stall)
    elif args.kill is not None:
        drill = ("kill", args.kill)
    if drill is not None and not 0 <= drill[1] < args.nodes:
        parser.error(f"drill node {drill[1]} out of range")

    def log(text: str) -> None:
        print(f"[cluster] {text}", flush=True)

    cluster = LocalCluster(
        args.nodes, seed=args.seed, heartbeat=args.heartbeat,
        out_dir=args.out, verbose=args.verbose, log=log)
    collector: TelemetryCollector | None = None
    try:
        cluster.start()
        collector = TelemetryCollector.for_cluster(cluster)
        collector.start(interval=args.telemetry_interval)
        if args.example == "process_pool":
            report = drive_process_pool(
                cluster, job_size=args.job,
                workers_per_node=args.workers_per_node, drill=drill, log=log)
        else:
            report = drive_replicated(
                cluster, requests=args.requests, drill=drill, log=log)
        collector.drain()
        report["telemetry"] = collector.summary()
        for node, counters in report["telemetry"].items():
            log(f"node {node} wire: shed={counters['frames_shed']} "
                f"batches_in={counters['batches_in']} "
                f"batches_out={counters['batches_out']} "
                f"hb_suppressed={counters['heartbeats_suppressed']} "
                f"queue_peak={counters['queue_peak_bytes']}B")
        if args.trace_out is not None:
            merged = collector.merged_events()
            trace = export_chrome_trace(merged, args.trace_out, us_per_t=1e6)
            problems = validate_chrome_trace(trace)
            if problems:
                log(f"merged trace INVALID: {problems[:5]}")
                return 1
            flows = sum(1 for r in trace["traceEvents"] if r["ph"] == "f")
            log(f"merged cluster trace: {len(merged)} events, {flows} flow "
                f"bindings -> {args.trace_out}")
        cluster.collect()
    finally:
        if collector is not None:
            collector.close()
        cluster.shutdown()

    if args.out is not None:
        path = Path(args.out) / "report.json"
        path.write_text(json.dumps(_jsonable(report), indent=2))
        log(f"report written to {path}")
    log(f"{args.example}: OK")
    return 0
