"""Real wire transport: multi-process ActorSpace nodes over TCP.

The simulator models section 7.3's inter-node coordinator bus as latency
draws inside one process.  This package is the bridge from simulator to
system: each Node runs as its own OS process and exchanges real bytes
over loopback (or LAN) TCP, while reusing the exact same coordinator,
directory, failure-detector, and dead-letter machinery the simulation
exercises.  The in-process simulated transports remain the default
everywhere; nothing here is imported unless a cluster is requested.

Modules
-------
``codec``
    Versioned, length-prefixed binary framing plus deterministic
    serialization for every on-the-wire type (envelopes, patterns,
    attribute atoms, addresses, capability tokens, visibility ops, bus
    submissions/acks, heartbeats, control requests).
``peer``
    One asyncio TCP server plus per-peer dialers with handshake
    (protocol + schema version check), capped-backoff reconnect, and
    graceful drain on shutdown.
``remote``
    ``TcpTransport`` (the :class:`~repro.runtime.transport.Transport`
    interface over real sockets), ``RemoteSequencerBus`` (the PR-3
    sequencer/failover protocol spoken in frames), and
    ``NetFailureDetector`` (the simulator's suspect/confirm path driven
    by real missed heartbeats).
``runtime``
    ``NodeRuntime`` — the per-process system facade that hosts one real
    :class:`~repro.runtime.coordinator.Coordinator` and stands in
    proxies for every remote node.
``cluster``
    The ``python -m repro serve`` / ``python -m repro cluster`` entry
    points: spawn N node processes on localhost, drive an example
    across them, inject failures, and collect per-node metrics and
    eventlog snapshots back to the launcher.
"""

from .codec import (  # noqa: F401
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    FrameDecoder,
    FrameKind,
    WireError,
    decode_value,
    encode_frame,
    encode_value,
    register_manager_factory,
    register_wire_type,
)
from .remote import RemoteSequencerBus, TcpTransport  # noqa: F401
