"""Cluster behavior registry + wire-type registrations.

A launcher cannot ship Python callables over the control connection, so
actors are created by *name*: the launcher asks for ``("pool_worker",
params)`` and the node process builds the behavior locally from this
registry.  Both sides import this module, which also registers the
application payload dataclasses (e.g. the process pool's ``Job``) with
the wire codec — keeping the codec's closed world property while letting
shipped examples run across real sockets unchanged.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.apps.process_pool import Job, PoolClient, PoolWorker
from repro.core.actor import ActorContext, Behavior
from repro.core.messages import Message

from .codec import WireError, register_wire_type

register_wire_type(Job)

#: name -> factory(params) -> Behavior
BEHAVIORS: dict[str, Callable[[dict], Behavior]] = {}


def register_behavior(name: str, factory: Callable[[dict], Behavior]) -> None:
    """Make ``name`` creatable via the cluster control plane."""
    BEHAVIORS[name] = factory


def build_behavior(name: str, params: dict | None) -> Behavior:
    """Instantiate a registered behavior from control-plane arguments."""
    factory = BEHAVIORS.get(name)
    if factory is None:
        raise WireError(
            f"unknown behavior {name!r}; registered: {sorted(BEHAVIORS)}"
        )
    return factory(dict(params or {}))


# -- built-in behaviors ---------------------------------------------------------

class EchoBehavior(Behavior):
    """Replies ``("echo", payload)`` to ``reply_to`` (or the sender)."""

    def __init__(self):
        self.count = 0
        self.last: Any = None

    def receive(self, ctx: ActorContext, message: Message) -> None:
        self.count += 1
        self.last = message.payload
        target = message.reply_to
        if target is not None:
            ctx.send_to(target, ("echo", message.payload))


class CounterBehavior(Behavior):
    """Counts messages; keeps the most recent payloads for inspection."""

    def __init__(self, keep: int = 8):
        self.count = 0
        self.keep = keep
        self.recent: list = []

    def receive(self, ctx: ActorContext, message: Message) -> None:
        self.count += 1
        self.recent.append(message.payload)
        del self.recent[:-self.keep]


class ReplicaBehavior(Behavior):
    """A replicated-service worker: acknowledge each request (E11 shape)."""

    def __init__(self, name: str = "replica"):
        self.name = name
        self.count = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        self.count += 1
        if message.reply_to is not None:
            ctx.send_to(message.reply_to, ("ok", self.name, self.count))


class LoadSinkBehavior(Behavior):
    """Acknowledges ``("req", i)`` with ``("ack", i)`` — a correlatable sink.

    Unlike :class:`ReplicaBehavior` the ack carries the request index, so
    a closed-loop driver can match each reply to its send timestamp and
    measure per-message round-trip latency.
    """

    def __init__(self):
        self.count = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        self.count += 1
        payload = message.payload
        if (message.reply_to is not None and isinstance(payload, tuple)
                and payload and payload[0] == "req"):
            ctx.send_to(message.reply_to, ("ack", payload[1]))


class LoadPumpBehavior(Behavior):
    """Closed-loop load generator: keep ``window`` requests outstanding.

    On ``("go",)`` it launches ``window`` requests at ``target`` (a
    :class:`LoadSinkBehavior`), then fires one replacement per ack until
    ``total`` round trips complete.  Offered load is therefore controlled
    by the window size, not a send-rate guess — the canonical closed-loop
    shape.  Results land as plain attributes (``done``, ``throughput``,
    ``p50_ms``, ``p99_ms``) that a launcher reads via the ``actor_state``
    control command; RTTs use ``time.monotonic`` so simulator and TCP
    runs are measured identically (host wall time).
    """

    def __init__(self, target, total: int, window: int):
        self.target = target
        self.total = int(total)
        self.window = max(1, int(window))
        self.sent = 0
        self.received = 0
        self.done = False
        self.throughput = 0.0
        self.p50_ms = 0.0
        self.p99_ms = 0.0
        self.elapsed_s = 0.0
        self._started_at = 0.0
        self._pending: dict[int, float] = {}
        self._rtts_ms: list[float] = []

    def _launch(self, ctx: ActorContext) -> None:
        index = self.sent
        self.sent += 1
        self._pending[index] = time.monotonic()
        ctx.send_to(self.target, ("req", index), reply_to=ctx.self_address)

    def receive(self, ctx: ActorContext, message: Message) -> None:
        payload = message.payload
        if payload == ("go",):
            self._started_at = time.monotonic()
            for _ in range(min(self.window, self.total)):
                self._launch(ctx)
            return
        if not (isinstance(payload, tuple) and payload
                and payload[0] == "ack"):
            return
        now = time.monotonic()
        sent_at = self._pending.pop(payload[1], None)
        if sent_at is not None:
            self._rtts_ms.append((now - sent_at) * 1000.0)
        self.received += 1
        if self.sent < self.total:
            self._launch(ctx)
        elif self.received >= self.total:
            self.elapsed_s = now - self._started_at
            if self.elapsed_s > 0:
                self.throughput = self.total / self.elapsed_s
            rtts = sorted(self._rtts_ms)
            if rtts:
                self.p50_ms = rtts[len(rtts) // 2]
                self.p99_ms = rtts[min(len(rtts) - 1,
                                       int(len(rtts) * 0.99))]
            self.done = True


class OverloadSinkBehavior(Behavior):
    """Counts arrivals; optionally burns ``busy_ms`` per message.

    The busy-wait sets a hard per-actor service capacity (1000/busy_ms
    messages per second), which is what the overload drill floods past.
    Acks only when asked (``reply_to`` set), so an open-loop pump can
    flood it without generating a return wave.
    """

    def __init__(self, busy_ms: float = 0.0):
        self.busy_ms = float(busy_ms)
        self.count = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        self.count += 1
        if self.busy_ms > 0:
            deadline = time.monotonic() + self.busy_ms / 1000.0
            while time.monotonic() < deadline:
                pass
        payload = message.payload
        if (message.reply_to is not None and isinstance(payload, tuple)
                and payload and payload[0] == "req"):
            ctx.send_to(message.reply_to, ("ack", payload[1]))


class OverloadPumpBehavior(Behavior):
    """Open-loop flood generator: ``burst`` sends per tick, no feedback.

    Unlike :class:`LoadPumpBehavior` (closed-loop: offered load tracks
    service rate by construction) this pump keeps offering at a fixed
    rate regardless of how the sink is doing — the defining shape of an
    overload drill.  On ``("go",)`` it self-schedules every ``tick``
    seconds and fires ``burst`` messages at ``target`` each tick until
    ``total`` have been sent; ``sent``/``done`` are readable via the
    ``actor_state`` control command.  Self-scheduling works identically
    on virtual and wall clocks, so one behavior drives both sweeps.
    """

    def __init__(self, target, total: int, burst: int, tick: float = 0.01):
        self.target = target
        self.total = int(total)
        self.burst = max(1, int(burst))
        self.tick = float(tick)
        self.sent = 0
        self.ticks = 0
        self.done = False

    def receive(self, ctx: ActorContext, message: Message) -> None:
        payload = message.payload
        if payload not in (("go",), ("tick",)):
            return
        self.ticks += payload == ("tick",)
        for _ in range(min(self.burst, self.total - self.sent)):
            ctx.send_to(self.target, ("req", self.sent))
            self.sent += 1
        if self.sent < self.total:
            ctx.schedule(self.tick, ("tick",))
        else:
            self.done = True


register_behavior("echo", lambda params: EchoBehavior())
register_behavior("counter",
                  lambda params: CounterBehavior(keep=int(params.get("keep", 8))))
register_behavior("replica",
                  lambda params: ReplicaBehavior(name=params.get("name", "replica")))
register_behavior("load_sink", lambda params: LoadSinkBehavior())
register_behavior("overload_sink", lambda params: OverloadSinkBehavior(
    busy_ms=float(params.get("busy_ms", 0.0))))
register_behavior("overload_pump", lambda params: OverloadPumpBehavior(
    params["target"], total=int(params["total"]),
    burst=int(params.get("burst", 32)),
    tick=float(params.get("tick", 0.01)),
))
register_behavior("load_pump", lambda params: LoadPumpBehavior(
    params["target"], total=int(params["total"]),
    window=int(params.get("window", 1)),
))
register_behavior("pool_worker", lambda params: PoolWorker(
    params["pool"],
    grain=int(params.get("grain", 64)),
    fanout=int(params.get("fanout", 4)),
    cost_per_item=float(params.get("cost_per_item", 0.001)),
))
register_behavior("pool_client", lambda params: PoolClient(
    params["pool"], Job(int(params["lo"]), int(params["hi"]))
))
