"""Cluster behavior registry + wire-type registrations.

A launcher cannot ship Python callables over the control connection, so
actors are created by *name*: the launcher asks for ``("pool_worker",
params)`` and the node process builds the behavior locally from this
registry.  Both sides import this module, which also registers the
application payload dataclasses (e.g. the process pool's ``Job``) with
the wire codec — keeping the codec's closed world property while letting
shipped examples run across real sockets unchanged.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.apps.process_pool import Job, PoolClient, PoolWorker
from repro.core.actor import ActorContext, Behavior
from repro.core.messages import Message

from .codec import WireError, register_wire_type

register_wire_type(Job)

#: name -> factory(params) -> Behavior
BEHAVIORS: dict[str, Callable[[dict], Behavior]] = {}


def register_behavior(name: str, factory: Callable[[dict], Behavior]) -> None:
    """Make ``name`` creatable via the cluster control plane."""
    BEHAVIORS[name] = factory


def build_behavior(name: str, params: dict | None) -> Behavior:
    """Instantiate a registered behavior from control-plane arguments."""
    factory = BEHAVIORS.get(name)
    if factory is None:
        raise WireError(
            f"unknown behavior {name!r}; registered: {sorted(BEHAVIORS)}"
        )
    return factory(dict(params or {}))


# -- built-in behaviors ---------------------------------------------------------

class EchoBehavior(Behavior):
    """Replies ``("echo", payload)`` to ``reply_to`` (or the sender)."""

    def __init__(self):
        self.count = 0
        self.last: Any = None

    def receive(self, ctx: ActorContext, message: Message) -> None:
        self.count += 1
        self.last = message.payload
        target = message.reply_to
        if target is not None:
            ctx.send_to(target, ("echo", message.payload))


class CounterBehavior(Behavior):
    """Counts messages; keeps the most recent payloads for inspection."""

    def __init__(self, keep: int = 8):
        self.count = 0
        self.keep = keep
        self.recent: list = []

    def receive(self, ctx: ActorContext, message: Message) -> None:
        self.count += 1
        self.recent.append(message.payload)
        del self.recent[:-self.keep]


class ReplicaBehavior(Behavior):
    """A replicated-service worker: acknowledge each request (E11 shape)."""

    def __init__(self, name: str = "replica"):
        self.name = name
        self.count = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        self.count += 1
        if message.reply_to is not None:
            ctx.send_to(message.reply_to, ("ok", self.name, self.count))


register_behavior("echo", lambda params: EchoBehavior())
register_behavior("counter",
                  lambda params: CounterBehavior(keep=int(params.get("keep", 8))))
register_behavior("replica",
                  lambda params: ReplicaBehavior(name=params.get("name", "replica")))
register_behavior("pool_worker", lambda params: PoolWorker(
    params["pool"],
    grain=int(params.get("grain", 64)),
    fanout=int(params.get("fanout", 4)),
    cost_per_item=float(params.get("cost_per_item", 0.001)),
))
register_behavior("pool_client", lambda params: PoolClient(
    params["pool"], Job(int(params["lo"]), int(params["hi"]))
))
