"""Pattern-directed software repository (section 1).

"The ActorSpace model allows open flexible interfaces for
pattern-directed retrieval from software repositories. ... Consider each
class as a 'factory' actor which may return its instances.  The interface
specifications of classes may be represented as attributes which are then
used to dynamically access classes from the library."

Each library class is a :class:`ClassFactory` actor, visible in the
repository space under structured interface attributes such as
``collections/list/ordered`` or ``io/stream/buffered``.  Clients retrieve
classes by *interface pattern* rather than by name:

* ``send("collections/*/ordered@repo", ("instantiate", args))`` — any one
  class implementing the interface;
* ``broadcast("io/**@repo", ("describe",))`` — enumerate everything under
  a namespace.

The taxonomy generator builds a deterministic synthetic library for the
E12 experiment (the paper names no concrete library; the substitution is
recorded in DESIGN.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.actor import ActorContext, Behavior
from repro.core.lattice import And, Desc, Has, subsumes
from repro.core.messages import Destination, Message
from repro.runtime.system import ActorSpaceSystem

_instance_ids = itertools.count()


class ClassFactory(Behavior):
    """A library class: instantiates itself on request.

    Protocol:

    * ``("instantiate", args)`` — replies ``("instance", class_name,
      instance_id, args)``;
    * ``("describe",)`` — replies ``("class", class_name, interfaces)``.
    """

    def __init__(self, class_name: str, interfaces: list[str]):
        self.class_name = class_name
        self.interfaces = list(interfaces)
        self.instantiations = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, *rest = message.payload
        if kind == "instantiate":
            args = rest[0] if rest else None
            self.instantiations += 1
            if message.reply_to is not None:
                ctx.send_to(
                    message.reply_to,
                    ("instance", self.class_name, next(_instance_ids), args),
                )
        elif kind == "describe":
            if message.reply_to is not None:
                ctx.send_to(message.reply_to,
                            ("class", self.class_name, list(self.interfaces)))


class RepositoryClient(Behavior):
    """Collects replies to repository queries."""

    def __init__(self):
        self.instances: list[tuple] = []
        self.classes: list[tuple[str, list[str]]] = []

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, *rest = message.payload
        if kind == "instance":
            self.instances.append(tuple(rest))
        elif kind == "class":
            name, interfaces = rest
            self.classes.append((name, interfaces))


#: Synthetic taxonomy: (namespace, kinds, traits) — the cross product
#: generates plausibly structured interface paths.
_TAXONOMY: list[tuple[str, list[str], list[str]]] = [
    ("collections", ["list", "set", "map", "queue", "bag"],
     ["ordered", "sorted", "immutable", "concurrent", "bounded"]),
    ("io", ["stream", "file", "socket", "pipe"],
     ["buffered", "async", "compressed", "encrypted"]),
    ("math", ["matrix", "vector", "poly", "graph"],
     ["dense", "sparse", "symbolic", "parallel"]),
    ("net", ["rpc", "pubsub", "gossip"],
     ["reliable", "ordered", "secure"]),
    ("ui", ["widget", "layout", "chart"],
     ["themed", "responsive", "animated"]),
]


@dataclass
class RepositoryHandle:
    """A built repository: its space plus the factory index."""

    space: object
    factories: dict[str, ClassFactory]
    client_addr: object
    client: RepositoryClient


def build_repository(
    system: ActorSpaceSystem, class_count: int = 200, seed: int = 0
) -> RepositoryHandle:
    """Populate a repository space with ``class_count`` factory actors.

    Each class advertises its primary interface path
    ``<namespace>/<kind>/<trait>`` and the generalization
    ``<namespace>/<kind>/any`` (so both exact and generalized patterns
    have matches).  Deterministic for a given seed.
    """
    rng = np.random.default_rng(seed)
    repo = system.create_space(attributes="repo")
    factories: dict[str, ClassFactory] = {}
    node_count = system.topology.node_count
    for i in range(class_count):
        namespace, kinds, traits = _TAXONOMY[int(rng.integers(0, len(_TAXONOMY)))]
        kind = kinds[int(rng.integers(0, len(kinds)))]
        trait = traits[int(rng.integers(0, len(traits)))]
        class_name = f"{namespace}.{kind}.{trait}.v{i}"
        interfaces = [f"{namespace}/{kind}/{trait}", f"{namespace}/{kind}/any"]
        factory = ClassFactory(class_name, interfaces)
        address = system.create_actor(factory, node=i % node_count, space=repo)
        system.make_visible(address, interfaces, repo)
        factories[class_name] = factory
    client = RepositoryClient()
    client_addr = system.create_actor(client, node=0)
    system.run()  # publish everything
    return RepositoryHandle(repo, factories, client_addr, client)


def query_one(system: ActorSpaceSystem, handle: RepositoryHandle,
              pattern: str, args=None) -> None:
    """``send``: instantiate one arbitrary class matching ``pattern``."""
    system.send(Destination(pattern, handle.space), ("instantiate", args),
                reply_to=handle.client_addr)


def query_all(system: ActorSpaceSystem, handle: RepositoryHandle,
              pattern: str) -> None:
    """``broadcast``: describe every class matching ``pattern``."""
    system.broadcast(Destination(pattern, handle.space), ("describe",),
                     reply_to=handle.client_addr)


def interface_desc(paths: list[str]) -> Desc:
    """Lift interface paths to a lattice description (all must hold)."""
    return And([Has(p) for p in paths])


def implements(factory: ClassFactory, requirement: Desc) -> bool:
    """Does ``factory`` satisfy a lattice-level interface requirement?

    This is the subsumption view of retrieval: a requirement is met when
    the factory's advertised interface description lies at or below it.
    """
    return requirement.satisfied_by(factory.interfaces) or subsumes(
        requirement, interface_desc(factory.interfaces)
    )
