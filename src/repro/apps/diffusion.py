"""Diffusion scheduling over neighbourhood actorSpaces (section 1).

"Alternately, diffusion scheduling may be obtained by successively
transferring work using actorSpaces representing local neighborhoods of
processors."

A grid of processor actors; for each processor ``p`` the driver creates a
*neighbourhood space* ``N_p`` containing exactly ``p``'s grid neighbours
(not ``p`` itself).  Every processor is therefore a member of up to four
neighbourhood spaces simultaneously — actorSpaces overlapping arbitrarily,
the structural property the paper contrasts with Concurrent Aggregates'
strict hierarchy.

Each processor consumes one work unit per tick; when its backlog exceeds
its neighbours' advertised mean by a threshold, it diffuses surplus units
with ``send('*@N_p')`` — one nondeterministically chosen neighbour per
unit.  E14 injects a hot spot and tracks the load variance over time: it
decays toward zero with diffusion enabled and stays put without.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actor import ActorContext, Behavior
from repro.core.messages import Destination, Message
from repro.runtime.system import ActorSpaceSystem


class GridProcessor(Behavior):
    """One processor on the diffusion grid.

    Protocol:

    * ``("work", units)`` — add backlog;
    * ``("tick",)`` — consume one unit, then diffuse surplus to the
      neighbourhood space if enabled.
    """

    def __init__(self, proc_id: int, neighborhood, tick: float = 0.1,
                 diffuse: bool = True, surplus_threshold: int = 2,
                 max_transfer: int = 4):
        self.proc_id = proc_id
        self.neighborhood = neighborhood
        self.tick = tick
        self.diffuse = diffuse
        self.surplus_threshold = surplus_threshold
        self.max_transfer = max_transfer
        self.backlog = 0
        self.completed = 0
        self.transferred_out = 0
        self.received = 0
        self.ticking = False

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, *rest = message.payload
        if kind == "work":
            (units,) = rest
            self.backlog += units
            self.received += units
            self._ensure_ticking(ctx)
        elif kind == "tick":
            self.ticking = False
            self._on_tick(ctx)
        else:
            raise ValueError(f"grid processor got {message.payload!r}")

    def _ensure_ticking(self, ctx: ActorContext) -> None:
        if not self.ticking and self.backlog > 0:
            self.ticking = True
            ctx.schedule(self.tick, ("tick",))

    def _on_tick(self, ctx: ActorContext) -> None:
        if self.backlog > 0:
            self.backlog -= 1
            self.completed += 1
        if self.diffuse and self.backlog > self.surplus_threshold:
            surplus = min(self.backlog - self.surplus_threshold,
                          self.max_transfer)
            for _ in range(surplus):
                self.backlog -= 1
                self.transferred_out += 1
                # One unit to one arbitrary neighbour: send, not broadcast.
                ctx.send(Destination("**", self.neighborhood), ("work", 1))
        self._ensure_ticking(ctx)


@dataclass
class DiffusionRunResult:
    """Metrics from one diffusion run."""

    load_series: list[tuple[float, list[int]]]
    completed: int
    injected: int
    transfers: int
    #: Virtual time from injection until every unit was consumed (first
    #: sample at which the grid went idle); ``None`` if work remained.
    makespan: float | None
    completed_series: list[tuple[float, int]] = field(default_factory=list)

    def variance_at(self, index: int) -> float:
        import numpy as np

        return float(np.var(self.load_series[index][1]))


def run_diffusion(
    system: ActorSpaceSystem,
    rows: int = 4,
    cols: int = 4,
    hot_units: int = 64,
    diffuse: bool = True,
    tick: float = 0.1,
    sample_every: float = 0.5,
    max_time: float = 200.0,
) -> DiffusionRunResult:
    """Inject ``hot_units`` of work at grid corner (0,0) and let it spread."""
    n = rows * cols
    node_count = system.topology.node_count

    def pid(r: int, c: int) -> int:
        return r * cols + c

    # Create per-processor neighbourhood spaces first.
    spaces = [system.create_space() for _ in range(n)]
    processors: list[GridProcessor] = []
    addresses = []
    for r in range(rows):
        for c in range(cols):
            i = pid(r, c)
            behavior = GridProcessor(i, spaces[i], tick=tick, diffuse=diffuse)
            address = system.create_actor(behavior, node=i % node_count,
                                          space=spaces[i])
            processors.append(behavior)
            addresses.append(address)
    # Membership: processor (r,c) is visible in each *neighbour's* space.
    for r in range(rows):
        for c in range(cols):
            i = pid(r, c)
            for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    system.make_visible(addresses[i], f"proc/p{i}",
                                        spaces[pid(rr, cc)])
    system.run()  # memberships settle

    start = system.clock.now
    system.send_to(addresses[0], ("work", hot_units))

    load_series: list[tuple[float, list[int]]] = []
    completed_series: list[tuple[float, int]] = []

    def sample(t_offset: float):
        def action():
            load_series.append(
                (system.clock.now - start, [p.backlog for p in processors])
            )
            completed_series.append(
                (system.clock.now - start, sum(p.completed for p in processors))
            )
        return action

    t = 0.0
    while t <= max_time:
        system.events.schedule(start + t, sample(t))
        t += sample_every

    system.run(until=start + max_time)
    # Drain whatever remains (sampling kept the queue alive).
    system.run()
    makespan = next(
        (t for t, done in completed_series if done >= hot_units), None
    )
    return DiffusionRunResult(
        load_series=load_series,
        completed=sum(p.completed for p in processors),
        injected=hot_units,
        transfers=sum(p.transferred_out for p in processors),
        makespan=makespan,
        completed_series=completed_series,
    )
