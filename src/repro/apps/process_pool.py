"""The dynamic process pool of section 6 (Figure 1).

"The client starts the data-processing by sending a message to an
arbitrary processor inside the ActorSpace ProcPool and a return address
for answers. ... The first processor which receives the job may decide
that the job is too large to handle; it then divides the job into
smaller subjobs, sends them to one of the other actors in its
neighborhood processor pool and waits for the partial answers. ...
By letting the processors divide the job as the problem is analyzed, we
remove a bottleneck around a master process ... And by using patterns,
the number of processors allocated to the task can be adjusted during
execution — without having to stop the system."

The job model is a divisible numeric task: ``Job(lo, hi)`` asks for an
associative reduction over ``[lo, hi)`` (sum of ``f(i)``), with a
``grain`` below which a worker computes directly.  Compute cost is
modelled in virtual time (each worker is a serial processor: concurrent
jobs queue), so pool size and dynamic arrivals visibly change makespan —
exactly the Figure-1 scenario.

The workers never know the pool size; everything is ``send('*@pool')``.
Division replies flow through per-split merge collectors, so there is no
master: the division tree *is* the coordination structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actor import ActorContext, Behavior
from repro.core.messages import Destination, Message
from repro.runtime.system import ActorSpaceSystem


@dataclass(frozen=True)
class Job:
    """A divisible reduction task over the integer range ``[lo, hi)``."""

    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo

    def split(self, parts: int) -> list["Job"]:
        """Split into up to ``parts`` non-empty contiguous subjobs."""
        parts = max(1, min(parts, self.size))
        step = self.size // parts
        bounds = [self.lo + i * step for i in range(parts)] + [self.hi]
        return [Job(a, b) for a, b in zip(bounds, bounds[1:]) if b > a]

    def compute(self) -> int:
        """The leaf computation: sum of squares over the range."""
        # Closed form keeps leaf evaluation O(1) in host time while the
        # *virtual* cost below models the real work.
        n_hi, n_lo = self.hi - 1, self.lo - 1

        def s(n: int) -> int:
            return n * (n + 1) * (2 * n + 1) // 6 if n >= 0 else 0

        return s(n_hi) - s(n_lo)


def expected_result(job: Job) -> int:
    """Ground truth for verification."""
    return job.compute()


class MergeCollector(Behavior):
    """Accumulates ``parts`` partial sums, then forwards the total.

    One collector is created per division; its address is the reply
    target of the subjobs.  This is what removes the master bottleneck:
    merging is as distributed as dividing.
    """

    def __init__(self, parts: int, answer_to, tag: str = "result"):
        self.remaining = parts
        self.total = 0
        self.answer_to = answer_to
        self.tag = tag

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, value = message.payload
        assert kind == "partial", f"collector got {message.payload!r}"
        self.total += value
        self.remaining -= 1
        if self.remaining == 0:
            ctx.send_to(self.answer_to, (self.tag, self.total))
            ctx.terminate()


class PoolWorker(Behavior):
    """One processor in the pool.

    Parameters
    ----------
    pool:
        The actorSpace (address) whose ``*`` pattern reaches the
        neighbourhood processors — the worker's ``MyNighbrProcs``.
    grain:
        Jobs of at most this size are computed directly.
    fanout:
        How many subjobs a division produces.
    cost_per_item:
        Virtual compute time per range item at a leaf.
    """

    def __init__(self, pool, grain: int = 64, fanout: int = 4,
                 cost_per_item: float = 0.001):
        self.pool = pool
        self.grain = grain
        self.fanout = fanout
        self.cost_per_item = cost_per_item
        self.busy_until = 0.0
        self.jobs_processed = 0
        self.divisions = 0
        self.leaves = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, *rest = message.payload
        if kind == "job":
            job, answer_to = rest
            self.jobs_processed += 1
            if job.size > self.grain:
                self._divide(ctx, job, answer_to)
            else:
                self._compute_leaf(ctx, job, answer_to)
        elif kind == "deliver":
            # A leaf finished "computing": emit the partial result.
            answer_to, value = rest
            ctx.send_to(answer_to, ("partial", value))
        else:
            raise ValueError(f"pool worker got {message.payload!r}")

    def _divide(self, ctx: ActorContext, job: Job, answer_to) -> None:
        """Too big: split and scatter to arbitrary pool members."""
        self.divisions += 1
        # A division must strictly shrink the job or the pool forwards it
        # forever: two parts minimum, whatever fanout was configured.
        subjobs = job.split(max(2, self.fanout))
        collector = ctx.create(MergeCollector(len(subjobs), answer_to, tag="partial"))
        for sub in subjobs:
            # send(*@MyNighbrProcs, subjobs[i], self) — the paper's line;
            # the paper's * "matches any attribute", which is our '**'.
            ctx.send(Destination("**", self.pool), ("job", sub, collector))

    def _compute_leaf(self, ctx: ActorContext, job: Job, answer_to) -> None:
        """Small enough: compute serially on this processor."""
        self.leaves += 1
        cost = job.size * self.cost_per_item
        start = max(ctx.now, self.busy_until)
        self.busy_until = start + cost
        ctx.schedule(self.busy_until - ctx.now, ("deliver", answer_to, job.compute()))


class PoolClient(Behavior):
    """The client of Figure 1: injects the job, waits for the answer."""

    def __init__(self, pool, job: Job):
        self.pool = pool
        self.job = job
        self.result: int | None = None
        self.finished_at: float | None = None

    def on_start(self, ctx: ActorContext) -> None:
        # send(*@ProcPool, job, self)
        ctx.send(Destination("**", self.pool), ("job", self.job, ctx.self_address))

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, value = message.payload
        if kind == "partial":  # top-level answer arrives as one partial
            self.result = value
            self.finished_at = ctx.now


@dataclass
class PoolRunResult:
    """Metrics from one process-pool run."""

    result: int
    expected: int
    makespan: float
    worker_jobs: list[int]
    divisions: int
    leaves: int
    pool_size_final: int

    @property
    def correct(self) -> bool:
        return self.result == self.expected


def run_process_pool(
    system: ActorSpaceSystem,
    workers: int,
    job_size: int = 4096,
    grain: int = 64,
    fanout: int = 4,
    cost_per_item: float = 0.001,
    arrivals: list[tuple[float, int]] | None = None,
    spread_nodes: bool = True,
) -> PoolRunResult:
    """Drive the Figure-1 scenario on ``system``.

    ``arrivals`` is a list of ``(virtual_time, count)`` — newly arriving
    processors that join the pool mid-run (the lighter circles of the
    figure).  Workers are placed round-robin across nodes when
    ``spread_nodes`` is set.
    """
    node_count = system.topology.node_count
    pool = system.create_space(attributes="procpool")
    worker_behaviors: list[PoolWorker] = []

    def add_worker(index: int) -> None:
        behavior = PoolWorker(pool, grain=grain, fanout=fanout,
                              cost_per_item=cost_per_item)
        node = index % node_count if spread_nodes else 0
        address = system.create_actor(behavior, node=node, space=pool)
        system.make_visible(address, f"proc/p{index}", pool)
        worker_behaviors.append(behavior)

    for i in range(workers):
        add_worker(i)
    # Let the pool's visibility registrations propagate before the client
    # arrives: the pool pre-exists the job in the Figure-1 scenario.
    system.run()

    job = Job(0, job_size)
    client_behavior = PoolClient(pool, job)
    client = system.create_actor(client_behavior, node=0)

    # Schedule mid-run arrivals (driver-level events), relative to the
    # moment the job is injected.
    start = system.clock.now
    next_index = workers
    for when, count in arrivals or []:
        def arrive(n=count):
            nonlocal next_index
            for _ in range(n):
                add_worker(next_index)
                next_index += 1

        system.events.schedule(start + when, arrive)

    system.run()
    assert client_behavior.result is not None, "pool run did not complete"
    return PoolRunResult(
        result=client_behavior.result,
        expected=expected_result(job),
        makespan=(client_behavior.finished_at or system.clock.now) - start,
        worker_jobs=[w.jobs_processed for w in worker_behaviors],
        divisions=sum(w.divisions for w in worker_behaviors),
        leaves=sum(w.leaves for w in worker_behaviors),
        pool_size_final=len(worker_behaviors),
    )
