"""Applications from the paper, used by the examples and experiments."""

from .contract_net import ContractManager, ContractNetResult, Contractor, Task, run_contract_net
from .diffusion import DiffusionRunResult, GridProcessor, run_diffusion
from .process_pool import (
    Job,
    MergeCollector,
    PoolClient,
    PoolRunResult,
    PoolWorker,
    expected_result,
    run_process_pool,
)
from .replicated import (
    ReplicaServer,
    ReplicatedRunResult,
    RequestClient,
    run_replicated_service,
)
from .repository import (
    ClassFactory,
    RepositoryClient,
    RepositoryHandle,
    build_repository,
    implements,
    interface_desc,
    query_all,
    query_one,
)
from .tsp import (
    TspCollector,
    TspRunResult,
    TspWorker,
    held_karp,
    random_instance,
    run_tsp,
)

__all__ = [
    "ClassFactory",
    "ContractManager",
    "ContractNetResult",
    "Contractor",
    "Task",
    "run_contract_net",
    "DiffusionRunResult",
    "GridProcessor",
    "Job",
    "MergeCollector",
    "PoolClient",
    "PoolRunResult",
    "PoolWorker",
    "ReplicaServer",
    "ReplicatedRunResult",
    "RepositoryClient",
    "RepositoryHandle",
    "RequestClient",
    "TspCollector",
    "TspRunResult",
    "TspWorker",
    "build_repository",
    "expected_result",
    "held_karp",
    "implements",
    "interface_desc",
    "query_all",
    "query_one",
    "random_instance",
    "run_diffusion",
    "run_process_pool",
    "run_replicated_service",
    "run_tsp",
]
