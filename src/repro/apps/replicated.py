"""Replicated services: load balancing and reliability (sections 1, 5.3).

"As the messages to the servers are distributed non-deterministically,
the load may be balanced automatically by an implementation, and none of
the clients need to know the exact number of potential receivers."  And:
"an abstraction that may be easily applied to replicating services, for
instance to enhance reliability or increase performance."

Two experiments share this module:

* **E2 (load balance / performance)** — clients fire requests at
  ``services/<name>/*``; each replica is a serial processor; we measure
  the per-replica request distribution (chi-square against uniform) and
  the makespan as the replica count grows.
* **E11 (reliability)** — some replicas crash mid-run (hard node crashes:
  their visibility entries remain, so the pattern send may pick a dead
  replica and the request is lost).  Clients retransmit on timeout; we
  measure the request success rate and added latency versus the crashed
  fraction.  The pattern interface never changes — clients are oblivious
  to membership, which is the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actor import ActorContext, Behavior
from repro.core.manager import Arbitration, SpaceManager
from repro.core.messages import Destination, Message
from repro.runtime.system import ActorSpaceSystem


class ReplicaServer(Behavior):
    """One replica: a serial processor answering ``("request", id)``."""

    def __init__(self, replica_id: int, service_time: float = 0.05):
        self.replica_id = replica_id
        self.service_time = service_time
        self.busy_until = 0.0
        self.handled = 0

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, *rest = message.payload
        if kind == "request":
            (request_id,) = rest
            self.handled += 1
            start = max(ctx.now, self.busy_until)
            self.busy_until = start + self.service_time
            ctx.schedule(
                self.busy_until - ctx.now,
                ("respond", request_id, message.reply_to),
            )
        elif kind == "respond":
            request_id, reply_to = rest
            if reply_to is not None:
                ctx.send_to(reply_to, ("response", request_id, self.replica_id))


class RequestClient(Behavior):
    """Fires ``count`` requests at a service pattern; optional retry.

    With ``timeout`` set, an unanswered request is retransmitted after the
    timeout (up to ``max_retries``), modelling the client-side recovery
    that, combined with replication and nondeterministic choice, yields
    the reliability claim of E11.
    """

    def __init__(self, service_pattern: str, space, count: int,
                 gap: float = 0.01, timeout: float | None = None,
                 max_retries: int = 5):
        self.service_pattern = service_pattern
        self.space = space
        self.count = count
        self.gap = gap
        self.timeout = timeout
        self.max_retries = max_retries
        self.sent = 0
        self.responses: dict[int, tuple[float, int]] = {}  # id -> (latency, replica)
        self.send_times: dict[int, float] = {}
        self.retries: dict[int, int] = {}
        self.given_up = 0

    def on_start(self, ctx: ActorContext) -> None:
        ctx.schedule(0.0, ("fire",))

    def _fire(self, ctx: ActorContext, request_id: int) -> None:
        self.send_times.setdefault(request_id, ctx.now)
        ctx.send(Destination(self.service_pattern, self.space),
                 ("request", request_id), reply_to=ctx.self_address)
        if self.timeout is not None:
            ctx.schedule(self.timeout, ("check", request_id))

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, *rest = message.payload
        if kind == "fire":
            if self.sent < self.count:
                request_id = self.sent
                self.sent += 1
                self._fire(ctx, request_id)
                ctx.schedule(self.gap, ("fire",))
        elif kind == "response":
            request_id, replica_id = rest
            if request_id not in self.responses:
                latency = ctx.now - self.send_times[request_id]
                self.responses[request_id] = (latency, replica_id)
        elif kind == "check":
            (request_id,) = rest
            if request_id in self.responses:
                return
            tries = self.retries.get(request_id, 0)
            if tries < self.max_retries:
                self.retries[request_id] = tries + 1
                self._fire(ctx, request_id)
            else:
                self.given_up += 1

    @property
    def success_rate(self) -> float:
        return len(self.responses) / self.count if self.count else 1.0


@dataclass
class ReplicatedRunResult:
    """Metrics from one replicated-service run.

    The trailing self-healing fields stay at their defaults for runs
    without a detector or recovery schedule, so pre-existing E2/E11
    rows are byte-identical.
    """

    per_replica: list[int]
    latencies: list[float]
    makespan: float
    success_rate: float
    retries_used: int
    requests: int
    dead_letters_queued: int = 0
    dead_letters_redelivered: int = 0
    failovers: int = 0
    quarantined_entries: int = 0


def run_replicated_service(
    system: ActorSpaceSystem,
    replicas: int,
    requests: int = 500,
    service_time: float = 0.05,
    gap: float = 0.01,
    arbitration: Arbitration = Arbitration.RANDOM,
    crash_replicas: int = 0,
    crash_after: float = 0.0,
    timeout: float | None = None,
    clients: int = 1,
    recover_after: float | None = None,
    detector: bool = False,
    detector_interval: float = 0.1,
) -> ReplicatedRunResult:
    """Drive E2/E11: ``clients`` clients vs ``replicas`` replicas.

    Replicas live one per node when the topology allows (so node crashes
    kill exactly one replica).  ``crash_replicas`` nodes hosting the
    first k replicas are crashed ``crash_after`` time units into the run.

    Self-healing knobs (E11 extension): with ``detector=True`` a
    heartbeat failure detector confirms the crashed nodes down and
    quarantines their directory entries, so pattern sends stop routing
    to dead replicas; with ``recover_after`` set, the crashed nodes come
    back at that offset and queued dead letters are redelivered.
    """
    manager_factory = lambda: SpaceManager(arbitration=arbitration)
    space = system.create_space(attributes="services",
                                manager_factory=manager_factory)
    node_count = system.topology.node_count
    # Node 0 hosts the clients and the bus sequencer; replicas spread over
    # the remaining nodes so a node crash takes out replicas, not clients.
    server_nodes = list(range(1, node_count)) or [0]
    server_behaviors: list[ReplicaServer] = []
    replica_node: dict[int, int] = {}
    for i in range(replicas):
        behavior = ReplicaServer(i, service_time=service_time)
        node = server_nodes[i % len(server_nodes)]
        replica_node[i] = node
        address = system.create_actor(behavior, node=node, space=space)
        system.make_visible(address, f"compute/replica-{i}", space)
        server_behaviors.append(behavior)
    system.run()  # visibility settles; service is "up" before clients start

    client_behaviors: list[RequestClient] = []
    per_client = requests // clients
    for c in range(clients):
        behavior = RequestClient("compute/*", space, per_client, gap=gap,
                                 timeout=timeout)
        system.create_actor(behavior, node=0)
        client_behaviors.append(behavior)

    start = system.clock.now
    if crash_replicas > 0:
        def crash():
            for i in range(min(crash_replicas, replicas)):
                system.crash_node(replica_node[i])

        system.events.schedule(start + crash_after, crash)
        if recover_after is not None:
            def recover():
                for i in range(min(crash_replicas, replicas)):
                    system.recover_node(replica_node[i])

            system.events.schedule(start + recover_after, recover)
    if detector:
        horizon = (
            max(crash_after, recover_after or 0.0)
            + per_client * gap + 50 * detector_interval
        )
        system.start_failure_detector(horizon, interval=detector_interval)
    system.run()

    latencies = [
        lat for cb in client_behaviors for (lat, _r) in cb.responses.values()
    ]
    answered = sum(len(cb.responses) for cb in client_behaviors)
    total = sum(cb.count for cb in client_behaviors)
    return ReplicatedRunResult(
        per_replica=[s.handled for s in server_behaviors],
        latencies=latencies,
        makespan=system.clock.now - start,
        success_rate=answered / total if total else 1.0,
        retries_used=sum(sum(cb.retries.values()) for cb in client_behaviors),
        requests=total,
        dead_letters_queued=system.dead_letters.queued_total,
        dead_letters_redelivered=system.dead_letters.redelivered_total,
        failovers=system.bus.failovers,
        quarantined_entries=system.tracer.quarantined_entries,
    )
