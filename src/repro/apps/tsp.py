"""Branch-and-bound TSP with broadcast lower bounds (section 5.3).

"The broadcast primitive greatly simplifies expressing many applications.
For instance, in search problems such as the Traveling Salesman, a new
lower bound can be broadcast to all nodes participating in the search for
the shortest route."

Each search worker owns a set of first-level branches (tours fixed after
the first edge) and explores them depth-first, *in chunks*: after
expanding a bounded number of search-tree nodes it reschedules itself,
which is what lets bound broadcasts from other workers interleave with
its search and prune it.  When a worker improves on the best complete
tour it knows, it broadcasts the new bound to ``searchers/**`` in the
search space.

The experiment knob is ``share_bounds``: with it off, each worker prunes
only on its own discoveries — the no-coordination baseline.  The headline
measurement (E3) is total nodes expanded with vs without broadcasting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.actor import ActorContext, Behavior
from repro.core.messages import Destination, Message
from repro.runtime.system import ActorSpaceSystem


def random_instance(n_cities: int, seed: int) -> np.ndarray:
    """A random symmetric TSP instance: points in the unit square."""
    rng = np.random.default_rng(seed)
    points = rng.random((n_cities, 2))
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def held_karp(dist: np.ndarray) -> float:
    """Exact TSP optimum by Held-Karp DP (ground truth for small n)."""
    n = len(dist)
    if n <= 2:
        return float(dist[0, 1] * 2) if n == 2 else 0.0
    full = 1 << (n - 1)  # subsets of cities 1..n-1
    dp = np.full((full, n - 1), np.inf)
    for j in range(n - 1):
        dp[1 << j, j] = dist[0, j + 1]
    for mask in range(full):
        for j in range(n - 1):
            if not mask & (1 << j) or dp[mask, j] == np.inf:
                continue
            base = dp[mask, j]
            for k in range(n - 1):
                if mask & (1 << k):
                    continue
                nxt = mask | (1 << k)
                cand = base + dist[j + 1, k + 1]
                if cand < dp[nxt, k]:
                    dp[nxt, k] = cand
    best = np.inf
    for j in range(n - 1):
        cand = dp[full - 1, j] + dist[j + 1, 0]
        best = min(best, cand)
    return float(best)


@dataclass
class _Frame:
    """One DFS frame: partial tour, visited mask, accumulated cost."""

    path: tuple[int, ...]
    visited: int
    cost: float


class TspWorker(Behavior):
    """One search participant.

    Message protocol:

    * ``("branch", first_city)`` — adopt the subtree rooted at tour
      ``0 -> first_city``;
    * ``("bound", value)`` — a (possibly better) global bound from a peer;
    * ``("go",)`` — expand the next chunk of the DFS stack;
    * the worker reports ``("done", nodes_expanded, best_cost)`` to the
      collector when its stack drains.
    """

    def __init__(self, dist: np.ndarray, space, collector,
                 chunk: int = 200, share_bounds: bool = True,
                 chunk_delay: float = 0.01):
        self.dist = dist
        self.n = len(dist)
        self.space = space
        self.collector = collector
        self.chunk = chunk
        self.share_bounds = share_bounds
        self.chunk_delay = chunk_delay
        self.stack: list[_Frame] = []
        self.best = float("inf")
        self.best_tour: tuple[int, ...] | None = None
        self.nodes_expanded = 0
        self.bounds_heard = 0
        self.running = False
        self.finished = False

    # -- protocol ------------------------------------------------------------------

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, *rest = message.payload
        if kind == "branch":
            (first,) = rest
            self.stack.append(
                _Frame(path=(0, first), visited=(1 << 0) | (1 << first),
                       cost=float(self.dist[0, first]))
            )
            self._ensure_running(ctx)
        elif kind == "bound":
            (value,) = rest
            self.bounds_heard += 1
            if value < self.best:
                self.best = value
                self.best_tour = None  # a peer holds the witness tour
        elif kind == "go":
            self.running = False
            self._expand_chunk(ctx)
        else:
            raise ValueError(f"tsp worker got {message.payload!r}")

    def _ensure_running(self, ctx: ActorContext) -> None:
        if not self.running and not self.finished:
            self.running = True
            ctx.schedule(self.chunk_delay, ("go",))

    # -- search ---------------------------------------------------------------------

    def _expand_chunk(self, ctx: ActorContext) -> None:
        budget = self.chunk
        improved = False
        while self.stack and budget > 0:
            frame = self.stack.pop()
            budget -= 1
            self.nodes_expanded += 1
            if frame.cost >= self.best:
                continue  # pruned
            if len(frame.path) == self.n:
                total = frame.cost + float(self.dist[frame.path[-1], 0])
                if total < self.best:
                    self.best = total
                    self.best_tour = frame.path
                    improved = True
                continue
            last = frame.path[-1]
            for city in range(1, self.n):
                if frame.visited & (1 << city):
                    continue
                cost = frame.cost + float(self.dist[last, city])
                if cost < self.best:
                    self.stack.append(
                        _Frame(frame.path + (city,),
                               frame.visited | (1 << city), cost)
                    )
        if improved and self.share_bounds:
            # The paper's line: broadcast the new lower bound to all
            # nodes participating in the search.
            ctx.broadcast(Destination("searchers/**", self.space),
                          ("bound", self.best))
        if self.stack:
            self._ensure_running(ctx)
        elif not self.finished:
            self.finished = True
            ctx.send_to(self.collector,
                        ("done", self.nodes_expanded, self.best))


class TspCollector(Behavior):
    """Gathers per-worker completions into the run result."""

    def __init__(self, expected_workers: int):
        self.expected = expected_workers
        self.reports: list[tuple[int, float]] = []
        self.finished_at: float | None = None

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, nodes, best = message.payload
        assert kind == "done"
        self.reports.append((nodes, best))
        if len(self.reports) == self.expected:
            self.finished_at = ctx.now


@dataclass
class TspRunResult:
    """Metrics from one distributed TSP run."""

    best_cost: float
    optimal_cost: float
    nodes_expanded: int
    bound_broadcasts: int
    bounds_heard: int
    makespan: float
    workers: int

    @property
    def found_optimum(self) -> bool:
        return abs(self.best_cost - self.optimal_cost) < 1e-9


def run_tsp(
    system: ActorSpaceSystem,
    n_cities: int = 10,
    workers: int = 4,
    instance_seed: int = 42,
    share_bounds: bool = True,
    chunk: int = 50,
    check_optimum: bool = True,
) -> TspRunResult:
    """Drive one branch-and-bound TSP search on ``system``."""
    dist = random_instance(n_cities, instance_seed)
    # A worker with no first-level branch has nothing to search (and would
    # never report): cap the active pool at the branch count.
    workers = min(workers, n_cities - 1)
    space = system.create_space(attributes="tsp")
    collector = system.create_actor(TspCollector(workers), node=0)
    node_count = system.topology.node_count
    behaviors: list[TspWorker] = []
    for i in range(workers):
        behavior = TspWorker(dist, space, collector, chunk=chunk,
                             share_bounds=share_bounds)
        address = system.create_actor(behavior, node=i % node_count, space=space)
        system.make_visible(address, f"searchers/w{i}", space)
        behaviors.append(behavior)
    system.run()  # let visibility settle before the search starts

    start = system.clock.now
    # Deal first-level branches round-robin across the workers (the deal
    # itself is not what E3 measures, so it uses literal patterns).
    for idx, first_city in enumerate(range(1, n_cities)):
        target = idx % workers
        system.send(Destination(f"searchers/w{target}", space),
                    ("branch", first_city))
    system.run()
    collector_rec = system.actor_record(collector)
    coll: TspCollector = collector_rec.behavior  # type: ignore[assignment]
    assert len(coll.reports) == workers, "search did not finish"
    best = min(b for _n, b in coll.reports)
    from repro.core.messages import Mode

    bound_broadcasts = system.tracer.sent.get(Mode.BROADCAST, 0)
    optimal = held_karp(dist) if check_optimum else best
    return TspRunResult(
        best_cost=best,
        optimal_cost=optimal,
        nodes_expanded=sum(n for n, _b in coll.reports),
        bound_broadcasts=bound_broadcasts,
        bounds_heard=sum(b.bounds_heard for b in behaviors),
        makespan=(coll.finished_at or system.clock.now) - start,
        workers=workers,
    )
