"""Contract-net task allocation over ActorSpace patterns.

The introduction motivates ActorSpace with "coordinating autonomous
software systems which may, for example, consist of active processes,
distributed databases, and intelligent problem-solving experts" — the
open-systems setting in which the classic contract-net protocol lives.
This app expresses contract net *entirely* through the paradigm's
primitives, which is the point of the exercise:

1. a **manager** announces a task with
   ``broadcast("experts/<skill>/**@market", announcement)`` — it neither
   knows nor cares who the experts currently are;
2. visible **contractors** whose attributes match reply with bids
   (point-to-point, to the announcement's reply address);
3. the manager awards the contract to the best bid received within the
   bidding window and the winner executes and reports.

Because eligibility is an *attribute*, experts join, leave, and retrain
(``change_attributes``) without any registry traffic; announcements sent
when no expert matches simply suspend until one arrives (section 5.6) —
open-system late binding for free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.actor import ActorContext, Behavior
from repro.core.messages import Destination, Message
from repro.runtime.system import ActorSpaceSystem

_task_ids = itertools.count()


@dataclass(frozen=True)
class Task:
    """A task to be contracted out."""

    skill: str
    size: float
    task_id: int = field(default_factory=lambda: next(_task_ids))


class Contractor(Behavior):
    """An expert: bids its current estimated completion time; executes wins.

    Parameters
    ----------
    skills:
        Skill atoms this expert advertises (its visibility attributes are
        ``experts/<skill>/<name>``).
    speed:
        Work units per virtual time unit.
    """

    def __init__(self, name: str, skills: list[str], speed: float = 1.0):
        self.name = name
        self.skills = list(skills)
        self.speed = speed
        self.busy_until = 0.0
        self.bids_made = 0
        self.tasks_done: list[int] = []

    def attributes(self) -> list[str]:
        return [f"experts/{skill}/{self.name}" for skill in self.skills]

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, *rest = message.payload
        if kind == "announce":
            (task,) = rest
            self.bids_made += 1
            eta = max(ctx.now, self.busy_until) + task.size / self.speed
            ctx.send_to(message.reply_to,
                        ("bid", task.task_id, eta, ctx.self_address))
        elif kind == "award":
            (task,) = rest
            start = max(ctx.now, self.busy_until)
            self.busy_until = start + task.size / self.speed
            ctx.schedule(self.busy_until - ctx.now,
                         ("finish", task, message.reply_to))
        elif kind == "finish":
            task, manager = rest
            self.tasks_done.append(task.task_id)
            if manager is not None:
                ctx.send_to(manager, ("done", task.task_id, self.name, ctx.now))
        else:
            raise ValueError(f"contractor got {message.payload!r}")


class ContractManager(Behavior):
    """Announces tasks, collects bids for a window, awards to the best."""

    def __init__(self, market, tasks: list[Task], bid_window: float = 0.5):
        self.market = market
        self.queue = list(tasks)
        self.bid_window = bid_window
        #: task_id -> list of (eta, bidder address)
        self.bids: dict[int, list[tuple[float, object]]] = {}
        self.awards: dict[int, object] = {}
        self.completions: dict[int, tuple[str, float]] = {}
        self.unawarded: list[int] = []

    def on_start(self, ctx: ActorContext) -> None:
        ctx.schedule(0.0, ("next-task",))

    def receive(self, ctx: ActorContext, message: Message) -> None:
        kind, *rest = message.payload
        if kind == "next-task":
            if self.queue:
                task = self.queue.pop(0)
                self.bids[task.task_id] = []
                ctx.broadcast(
                    Destination(f"experts/{task.skill}/**", self.market),
                    ("announce", task),
                    reply_to=ctx.self_address,
                )
                ctx.schedule(self.bid_window, ("close-bidding", task))
        elif kind == "bid":
            task_id, eta, bidder = rest
            if task_id in self.bids and task_id not in self.awards:
                self.bids[task_id].append((eta, bidder))
        elif kind == "close-bidding":
            (task,) = rest
            bids = self.bids.get(task.task_id, [])
            if bids:
                _eta, winner = min(bids, key=lambda b: (b[0], str(b[1])))
                self.awards[task.task_id] = winner
                ctx.send_to(winner, ("award", task), reply_to=ctx.self_address)
            else:
                self.unawarded.append(task.task_id)
            ctx.schedule(0.0, ("next-task",))
        elif kind == "done":
            task_id, name, finished_at = rest
            self.completions[task_id] = (name, finished_at)
        else:
            raise ValueError(f"manager got {message.payload!r}")


@dataclass
class ContractNetResult:
    """Metrics from one contract-net run."""

    completed: dict[int, tuple[str, float]]
    unawarded: list[int]
    bids_per_task: dict[int, int]
    per_contractor: dict[str, int]
    makespan: float


def run_contract_net(
    system: ActorSpaceSystem,
    contractors: list[tuple[str, list[str], float]],
    tasks: list[Task],
    bid_window: float = 0.5,
) -> ContractNetResult:
    """Drive a contract-net run.

    ``contractors`` is a list of ``(name, skills, speed)``.
    """
    market = system.create_space(attributes="market")
    node_count = system.topology.node_count
    behaviors: list[Contractor] = []
    for i, (name, skills, speed) in enumerate(contractors):
        behavior = Contractor(name, skills, speed)
        addr = system.create_actor(behavior, node=i % node_count, space=market)
        system.make_visible(addr, behavior.attributes(), market)
        behaviors.append(behavior)
    system.run()

    manager = ContractManager(market, tasks, bid_window=bid_window)
    system.create_actor(manager, node=0)
    start = system.clock.now
    system.run()
    per_contractor = {b.name: len(b.tasks_done) for b in behaviors}
    return ContractNetResult(
        completed=dict(manager.completions),
        unawarded=list(manager.unawarded),
        bids_per_task={tid: len(bs) for tid, bs in manager.bids.items()},
        per_contractor=per_contractor,
        makespan=(max((t for _n, t in manager.completions.values()),
                      default=start) - start),
    )
