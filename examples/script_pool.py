#!/usr/bin/env python
"""The section-6 process pool, written entirely in the script language.

Run:  python examples/script_pool.py

The paper's worked example (Figure 1) re-expressed in the prototype's
own run-time-loadable notation: workers that divide jobs too big for
them, scatter the halves back into the pool with ``send``, and merge the
partial answers through collector actors — no Python behaviors at all.
Runs under both interpreter engines.
"""

from repro import ActorSpaceSystem, Topology
from repro.interp import BehaviorLibrary, InterpretedBehavior

POOL_SCRIPTS = """
(behavior s-collector (remaining total answer-to)
  (method partial (v)
    (if (= remaining 1)
        (begin
          (send-to answer-to (list "partial" (+ total v)))
          (terminate))
        (become s-collector (- remaining 1) (+ total v) answer-to))))

(behavior s-worker (grain)
  (method job (lo hi answer-to)
    (if (> (- hi lo) grain)
        ; too big: divide among arbitrary pool members (Fig. 1)
        (let ((mid (floor (/ (+ lo hi) 2)))
              (collector (create s-collector 2 0 answer-to)))
          (send "procpool/**" (list "job" lo mid collector))
          (send "procpool/**" (list "job" mid hi collector)))
        ; small enough: compute sum(lo..hi-1) right here
        (let ((i lo) (total 0))
          (while (< i hi)
            (set! total (+ total i))
            (set! i (+ i 1)))
          (send-to answer-to (list "partial" total))))))

(behavior s-client (pool-pattern lo hi)
  (method start ()
    (send pool-pattern (list "job" lo hi (self))))
  (method partial (v)
    (print "result:" v)))
"""


def run_pool(engine: str, workers: int = 6, lo: int = 0, hi: int = 5000):
    system = ActorSpaceSystem(topology=Topology.lan(3), seed=13)
    library = BehaviorLibrary()
    library.load(POOL_SCRIPTS)
    for i in range(workers):
        worker = system.create_actor(
            InterpretedBehavior(library, library.get("s-worker"), [512],
                                engine=engine),
            node=i % 3)
        system.make_visible(worker, f"procpool/w{i}")
    system.run()
    client = system.create_actor(
        InterpretedBehavior(library, library.get("s-client"),
                            ["procpool/**", lo, hi], engine=engine))
    system.send_to(client, ["start"])
    system.run()
    output = system.actor_record(client).behavior.output
    expected = sum(range(lo, hi))
    return output, expected, system.clock.now


def main() -> None:
    print(__doc__)
    for engine in ("tree", "bytecode"):
        output, expected, t = run_pool(engine)
        print(f"[{engine:8s}] {output[0] if output else '(no answer)'}  "
              f"(expected {expected})  virtual time {t:.2f}")
    print(
        "\nReading: divide-and-conquer, collectors, and dynamic pool\n"
        "membership are all expressed in the paradigm's own coordination\n"
        "primitives from inside the script language — the prototype of\n"
        "section 7 can host the application of section 6."
    )


if __name__ == "__main__":
    main()
