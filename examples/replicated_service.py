#!/usr/bin/env python
"""Replicated services: load balancing + reliability (paper sections 1, 5.3).

Run:  python examples/replicated_service.py

Clients address a *pattern*, never a replica: ``send('compute/*@services')``.
The system's nondeterministic choice spreads the load; when replicas
crash, clients that retransmit on timeout still get every answer — the
pattern interface hides membership entirely.
"""

from repro import ActorSpaceSystem, Topology
from repro.apps.replicated import run_replicated_service
from repro.util import TextTable, chi_square_uniform, summarize


def main() -> None:
    print(__doc__)
    balance = TextTable(
        ["replicas", "makespan", "mean latency", "chi2 vs uniform"],
        title="Load balancing: clients never know the replica count",
    )
    for replicas in (1, 2, 4, 8):
        system = ActorSpaceSystem(topology=Topology.lan(9), seed=5)
        result = run_replicated_service(system, replicas=replicas,
                                        requests=400)
        balance.add_row([
            replicas,
            result.makespan,
            summarize(result.latencies)["mean"],
            chi_square_uniform(result.per_replica),
        ])
    print(balance)

    crash = TextTable(
        ["replicas", "crashed", "client retries", "success rate",
         "retransmissions"],
        title="\nReliability: crash half the replicas mid-run",
    )
    for timeout in (None, 0.5):
        system = ActorSpaceSystem(topology=Topology.lan(9), seed=5)
        result = run_replicated_service(
            system, replicas=8, requests=200,
            crash_replicas=4, crash_after=0.4, timeout=timeout,
        )
        crash.add_row([
            8, 4, "on" if timeout else "off",
            f"{result.success_rate:.1%}", result.retries_used,
        ])
    print(crash)
    print(
        "\nReading: makespan scales down with replicas and requests split\n"
        "near-uniformly (small chi-square).  After crashes, plain sends\n"
        "lose the requests routed to dead replicas; with retransmission the\n"
        "nondeterministic choice eventually lands on a live one — the\n"
        "replication-for-reliability claim, with zero client code change."
    )


if __name__ == "__main__":
    main()
