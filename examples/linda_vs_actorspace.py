#!/usr/bin/env python
"""ActorSpace vs Linda on the same substrate (paper section 3).

Run:  python examples/linda_vs_actorspace.py

A producer publishes results that consumers want *before they exist*.
In Linda, a consumer either blocks in the kernel (`in`) or polls (`inp`)
— and any process can steal any tuple.  In ActorSpace, the send suspends
inside the space and is delivered when a matching consumer appears, the
sender having *chosen its receiver's attributes*.
"""

from repro import ActorSpaceSystem, Topology
from repro.baselines.linda import PollingConsumer, TupleSpaceBehavior
from repro.core.messages import Mode
from repro.util import TextTable


def actorspace_run(arrival_delay: float) -> tuple[int, float]:
    """Producer sends before the consumer exists; suspension bridges the gap."""
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=4)
    got: list[float] = []
    system.send("consumers/c1", ("result", 42))  # suspends: nobody matches
    system.run()

    def arrive():
        consumer = system.create_actor(
            lambda ctx, m: got.append(ctx.now), node=1)
        system.make_visible(consumer, "consumers/c1")

    system.events.schedule(arrival_delay, arrive)
    system.run()
    messages = sum(system.tracer.sent.values()) + sum(
        system.tracer.delivered.values())
    assert got, "suspended message was not delivered"
    return messages, got[0]


def linda_run(arrival_delay: float, poll_interval: float) -> tuple[int, float]:
    """Consumer polls with inp until the producer's tuple appears."""
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=4)
    space = system.create_actor(TupleSpaceBehavior(), node=0)
    done: list[float] = []

    class _Probe(PollingConsumer):
        def receive(self, ctx, message):
            super().receive(ctx, message)
            if self.result is not None and not done:
                done.append(ctx.now)

    consumer = _Probe(space, ("result", 42), poll_interval)
    system.create_actor(consumer, node=1)
    # The producer's tuple arrives late, as in the ActorSpace run.
    system.events.schedule(
        arrival_delay,
        lambda: system.send_to(space, ("out", ("result", 42))),
    )
    system.run()
    assert done, "polling consumer never matched"
    messages = consumer.polls * 2  # each probe is a request + reply
    return messages, done[0]


def main() -> None:
    print(__doc__)
    table = TextTable(
        ["receiver arrives after", "mechanism", "messages", "delivered at"],
        title="Late-binding delivery: suspension vs polling",
    )
    for delay in (1.0, 5.0, 20.0):
        m, t = actorspace_run(delay)
        table.add_row([delay, "ActorSpace suspend", m, t])
        for poll in (0.2, 1.0):
            m, t = linda_run(delay, poll)
            table.add_row([delay, f"Linda inp poll={poll}", m, t])
    print(table)
    print(
        "\nReading: suspension costs a constant couple of messages no matter\n"
        "how late the receiver arrives; polling pays per probe and trades\n"
        "latency against traffic through the poll interval.  And in Linda\n"
        "any process could have consumed the tuple first — there is no way\n"
        "to address 'the process with attribute consumers/c1'."
    )


if __name__ == "__main__":
    main()
