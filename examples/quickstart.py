#!/usr/bin/env python
"""Quickstart: the ActorSpace paradigm in five small scenes.

Run:  python examples/quickstart.py

Covers, in order:
  1. actors and point-to-point sends (the classic actor model);
  2. visibility + pattern-directed send/broadcast (the paper's additions);
  3. nondeterministic choice over a replicated group;
  4. suspension: a message sent before any receiver exists is parked and
     delivered once a matching actor appears (section 5.6);
  5. capabilities: visibility changes need the right key (section 5.4).
"""

from repro import ActorSpaceSystem, CapabilityError, Topology


def main() -> None:
    system = ActorSpaceSystem(topology=Topology.lan(3), seed=2026)
    log: list[str] = []

    # -- 1. plain actors ---------------------------------------------------
    def echo(ctx, message):
        log.append(f"[echo] got {message.payload!r}")
        if message.reply_to is not None:
            ctx.send_to(message.reply_to, ("echoed", message.payload))

    echo_addr = system.create_actor(echo, node=1)
    sink = system.create_actor(lambda ctx, m: log.append(f"[sink] {m.payload!r}"))
    system.send_to(echo_addr, "hello", reply_to=sink)
    system.run()

    # -- 2. visibility and patterns -----------------------------------------
    def printer(name):
        def behavior(ctx, message):
            log.append(f"[{name}] prints {message.payload!r}")
        return behavior

    color = system.create_actor(printer("color"), node=1)
    mono = system.create_actor(printer("mono"), node=2)
    system.make_visible(color, "services/printer/color")
    system.make_visible(mono, "services/printer/mono")
    system.run()

    system.send("services/printer/color", "one page, in color")
    system.broadcast("services/printer/*", "test sheet for every printer")
    system.run()

    # -- 3. replicated group, client oblivious to membership ----------------
    hits = {"a": 0, "b": 0, "c": 0}

    def replica(tag):
        def behavior(ctx, message):
            hits[tag] += 1
        return behavior

    for tag in hits:
        addr = system.create_actor(replica(tag))
        system.make_visible(addr, f"services/kv/{tag}")
    system.run()
    for i in range(60):
        system.send("services/kv/*", ("get", i))
    system.run()
    log.append(f"[group] 60 sends split across replicas as {hits}")

    # -- 4. suspension: send before the receiver exists ---------------------
    system.send("services/translator", "bonjour")  # nobody matches yet
    system.run()
    log.append(f"[suspend] message parked: {system.tracer.suspended_count} suspended so far")
    translator = system.create_actor(
        lambda ctx, m: log.append(f"[translator] late delivery of {m.payload!r}"))
    system.make_visible(translator, "services/translator")
    system.run()

    # -- 5. capabilities -----------------------------------------------------
    key = system.new_capability()
    vault = system.create_space(capability=key)
    system.run()  # the new space's record propagates to every replica
    secret = system.create_actor(lambda ctx, m: None)
    try:
        system.make_visible(secret, "agents/secret", vault)  # no key!
    except CapabilityError:
        log.append("[caps] visibility without the key: refused")
    system.make_visible(secret, "agents/secret", vault, capability=key)
    system.run()
    entry = system.directory_of(0).space(vault).lookup(secret)
    log.append(f"[caps] with the key: accepted ({sorted(map(str, entry.attributes))})")

    print("\n".join(log))
    print(f"\nreplicas coherent across nodes: {system.replicas_coherent()}")
    print(f"virtual time elapsed: {system.clock.now:.3f}")


if __name__ == "__main__":
    main()
