#!/usr/bin/env python
"""Pattern-directed retrieval from a software repository (paper section 1).

Run:  python examples/software_repository.py

Every library class is a *factory actor* visible in the repository space
under its interface attributes (``collections/list/ordered`` ...).
Clients retrieve classes by what they *do*, not what they are called:
``send`` picks one implementation, ``broadcast`` enumerates all of them.
"""

from repro import ActorSpaceSystem, Topology
from repro.apps.repository import build_repository, query_all, query_one
from repro.util import TextTable


def main() -> None:
    print(__doc__)
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=31)
    handle = build_repository(system, class_count=300, seed=8)
    print(f"repository populated with {len(handle.factories)} class factories\n")

    queries_one = [
        "collections/list/*",       # any list implementation
        "collections/*/concurrent",  # anything concurrent in collections
        "io/stream/buffered",        # one exact interface
    ]
    for q in queries_one:
        query_one(system, handle, q)
    system.run()

    got = TextTable(["query (send → one match)", "instantiated class"],
                    title="Instantiate one implementation per interface pattern")
    for q, inst in zip(queries_one, handle.client.instances):
        got.add_row([q, inst[0]])
    print(got)

    handle.client.classes.clear()
    query_all(system, handle, "math/matrix/**")
    system.run()
    print(f"\nbroadcast 'math/matrix/**' found {len(handle.client.classes)} "
          "matrix classes:")
    for name, interfaces in sorted(handle.client.classes)[:8]:
        print(f"  {name:32s} {interfaces}")
    if len(handle.client.classes) > 8:
        print(f"  ... and {len(handle.client.classes) - 8} more")
    print(
        "\nReading: clients hold no references and no names — the interface\n"
        "attributes are the access path, and new classes published at run\n"
        "time become retrievable with no registry changes."
    )


if __name__ == "__main__":
    main()
