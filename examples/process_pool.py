#!/usr/bin/env python
"""The dynamic process pool of the paper's section 6 (Figure 1).

Run:  python examples/process_pool.py

A client sends one big divisible job into a processor-pool actorSpace
with ``send('*@ProcPool')``.  Whichever processor receives it decides the
job is too big, splits it, and scatters the pieces back into the pool —
no master process, no processor knows the pool size.  Halfway through,
new processors arrive (the lighter circles in Figure 1) and immediately
share the load.
"""

from repro import ActorSpaceSystem, Topology
from repro.apps.process_pool import run_process_pool
from repro.util import TextTable


def main() -> None:
    print(__doc__)
    table = TextTable(
        ["pool size", "arrivals", "makespan", "jobs/worker (min..max)",
         "divisions", "correct"],
        title="Dynamic process pool: divide-and-conquer without a master",
    )
    for workers, arrivals in [(1, None), (4, None), (8, None), (16, None),
                              (4, [(0.5, 12)])]:
        system = ActorSpaceSystem(topology=Topology.lan(4), seed=42)
        result = run_process_pool(
            system, workers=workers, job_size=4096, grain=64,
            arrivals=arrivals,
        )
        loads = [j for j in result.worker_jobs if j > 0] or [0]
        table.add_row([
            f"{workers}->{result.pool_size_final}",
            "yes" if arrivals else "no",
            result.makespan,
            f"{min(loads)}..{max(loads)}",
            result.divisions,
            result.correct,
        ])
    print(table)
    print(
        "\nReading: makespan falls as the pool grows although the client's\n"
        "code never changes; mid-run arrivals (last row) rescue a small pool\n"
        "without stopping the system — the claim of section 6."
    )


if __name__ == "__main__":
    main()
