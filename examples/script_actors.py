#!/usr/bin/env python
"""Run-time-loaded behavior scripts (the paper's section-7 prototype).

Run:  python examples/script_actors.py

The prototype interprets behavior code so that behaviors can be loaded
while the system runs.  This example loads a small ping-pong protocol and
a counter written in the behavior-script language, then hot-loads a
*replacement* behavior mid-run and `become`s into it.
"""

from repro import ActorSpaceSystem, Topology
from repro.interp import BehaviorLibrary, InterpretedBehavior

SCRIPTS = """
(behavior ponger ()
  (method ping (n from)
    (print "pong" n)
    (send-to from (list "pong" n))))

(behavior pinger (peer remaining)
  (method start ()
    (send-to peer (list "ping" remaining (self))))
  (method pong (n)
    (if (> remaining 1)
        (begin
          (become pinger peer (- remaining 1))
          (send-to peer (list "ping" (- remaining 1) (self))))
        (print "rally finished"))))

(behavior counter (count)
  (method incr (by) (become counter (+ count by)))
  (method show () (print "count =" count)))
"""

UPGRADE = """
(behavior counter (count)
  (method incr (by) (become counter (+ count (* 2 by))))  ; doubled!
  (method show () (print "upgraded count =" count)))
"""


def main() -> None:
    print(__doc__)
    library = BehaviorLibrary()
    library.load(SCRIPTS)
    system = ActorSpaceSystem(topology=Topology.lan(2), seed=1)

    ponger = system.create_actor(
        InterpretedBehavior(library, library.get("ponger"), []), node=1)
    pinger = system.create_actor(
        InterpretedBehavior(library, library.get("pinger"), [ponger, 3]))
    system.send_to(pinger, ["start"])
    system.run()

    counter = system.create_actor(
        InterpretedBehavior(library, library.get("counter"), [0]))
    for _ in range(3):
        system.send_to(counter, ["incr", 5])
    system.run()  # message arrival order is nondeterministic; sequence the show
    system.send_to(counter, ["show"])
    system.run()

    # Hot-load new code: the next `become counter ...` picks it up.
    library.load(UPGRADE)
    for _ in range(2):
        system.send_to(counter, ["incr", 5])
    system.run()
    system.send_to(counter, ["show"])
    system.run()

    for address in (ponger, pinger, counter):
        record = system.actor_record(address)
        for line in record.behavior.output:
            print(f"  <{record.behavior.definition.name}> {line}")
        print(f"  ports: {record.behavior.ports}")
    print(
        "\nReading: all three actors run interpreted code; invocations\n"
        "arrive on the Invocation-port, `become` travels the Behavior-port,\n"
        "and loading UPGRADE changed the counter's semantics mid-run\n"
        "without stopping anything."
    )


if __name__ == "__main__":
    main()
