#!/usr/bin/env python
"""Contract-net task allocation in an open expert marketplace.

Run:  python examples/contract_net.py

The paper's introduction frames ActorSpace as coordination for
"autonomous software systems ... distributed databases, and intelligent
problem-solving experts".  Here a manager broadcasts task announcements
to ``experts/<skill>/**`` in a market actorSpace; whoever matches bids;
the best estimated completion time wins.  Experts never register with the
manager — visibility attributes are their whole interface.
"""

from repro import ActorSpaceSystem, Topology
from repro.apps.contract_net import Task, run_contract_net
from repro.util import TextTable


def main() -> None:
    print(__doc__)
    contractors = [
        ("ada", ["proofs", "search"], 2.0),
        ("bob", ["search"], 1.0),
        ("cyd", ["proofs"], 1.2),
        ("dee", ["search", "planning"], 1.5),
    ]
    tasks = (
        [Task("search", 2.0) for _ in range(4)]
        + [Task("proofs", 3.0) for _ in range(3)]
        + [Task("planning", 1.0)]
        + [Task("translation", 1.0)]  # nobody has this skill (yet)
    )
    system = ActorSpaceSystem(topology=Topology.lan(4), seed=17)
    result = run_contract_net(system, contractors, tasks, bid_window=0.4)

    table = TextTable(["task", "skill", "bids", "executed by"],
                      title="Awards")
    for task in tasks:
        if task.task_id in result.completed:
            who = result.completed[task.task_id][0]
        elif task.task_id in result.unawarded:
            who = "(no matching expert — unawarded)"
        else:
            who = "?"
        table.add_row([task.task_id, task.skill,
                       result.bids_per_task.get(task.task_id, 0), who])
    print(table)
    loads = TextTable(["expert", "tasks executed"], title="\nExpert load")
    for name, count in sorted(result.per_contractor.items()):
        loads.add_row([name, count])
    print(loads)
    print(
        f"\nmakespan: {result.makespan:.2f} virtual time units\n"
        "Reading: skills are visibility attributes, so eligibility is a\n"
        "destination pattern; bids fold in current backlog, so load spreads\n"
        "to idle experts; the unmatched 'translation' announcement simply\n"
        "suspends until a translator ever joins the market."
    )


if __name__ == "__main__":
    main()
