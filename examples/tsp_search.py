#!/usr/bin/env python
"""Branch-and-bound TSP with broadcast lower bounds (paper section 5.3).

Run:  python examples/tsp_search.py

Search workers each own a slice of the tour tree.  When any worker finds
a better complete tour it broadcasts the new bound to ``searchers/**`` in
the search actorSpace; every other worker prunes against it.  The table
compares total search-tree nodes expanded with sharing on and off.
"""

from repro import ActorSpaceSystem, Topology
from repro.apps.tsp import run_tsp
from repro.util import TextTable


def main() -> None:
    print(__doc__)
    table = TextTable(
        ["cities", "workers", "bounds shared", "nodes expanded",
         "bound broadcasts", "found optimum"],
        title="TSP branch-and-bound: the value of broadcasting bounds",
    )
    for n_cities in (9, 10, 11):
        for share in (True, False):
            system = ActorSpaceSystem(topology=Topology.lan(4), seed=7)
            result = run_tsp(system, n_cities=n_cities, workers=4,
                             instance_seed=123, share_bounds=share)
            table.add_row([
                n_cities, result.workers, "yes" if share else "no",
                result.nodes_expanded, result.bound_broadcasts,
                result.found_optimum,
            ])
    print(table)
    print(
        "\nReading: both variants find the optimum, but sharing bounds over\n"
        "broadcast prunes a large fraction of the tree — one broadcast\n"
        "reaches every current searcher without the sender knowing who or\n"
        "how many they are."
    )


if __name__ == "__main__":
    main()
