#!/usr/bin/env python
"""Diffusion scheduling over neighbourhood actorSpaces (paper section 1).

Run:  python examples/diffusion_grid.py

64 work units land on one corner of a 4x4 processor grid.  Every
processor belongs to its neighbours' actorSpaces (spaces overlap
arbitrarily!), and offloads surplus with ``send('*@N_p')`` — one unit to
one arbitrary neighbour.  Watch the hot spot melt.
"""

from repro import ActorSpaceSystem, Topology
from repro.apps.diffusion import run_diffusion
from repro.util import TextTable


def heat_row(loads, cols):
    """Render one sample as a compact heat strip per grid row."""
    glyphs = " .:-=+*#%@"
    rows = []
    for r in range(len(loads) // cols):
        cells = loads[r * cols:(r + 1) * cols]
        rows.append("".join(
            glyphs[min(len(glyphs) - 1, c if c < 8 else 8 + (c > 16))]
            for c in cells))
    return " / ".join(rows)


def main() -> None:
    print(__doc__)
    results = {}
    for diffuse in (True, False):
        system = ActorSpaceSystem(topology=Topology.lan(4), seed=9)
        results[diffuse] = run_diffusion(
            system, rows=4, cols=4, hot_units=64, diffuse=diffuse,
            sample_every=0.4, max_time=20,
        )

    table = TextTable(["t", "grid load (diffusion on)", "grid load (off)"],
                      title="Backlog per processor over time "
                            "(rows separated by '/'; darker = more load)")
    on, off = results[True], results[False]
    for i in range(0, min(len(on.load_series), len(off.load_series), 14)):
        t, loads_on = on.load_series[i]
        _t, loads_off = off.load_series[i]
        table.add_row([f"{t:.1f}", heat_row(loads_on, 4), heat_row(loads_off, 4)])
    print(table)
    print(
        f"\nmakespan: diffusion on = {on.makespan}, off = {off.makespan}; "
        f"transfers = {on.transfers}\n"
        "Reading: with diffusion the corner's backlog spreads through the\n"
        "overlapping neighbourhood spaces within a few ticks; without it,\n"
        "fifteen processors idle while one grinds."
    )


if __name__ == "__main__":
    main()
