"""Legacy setup shim: the build environment has no `wheel` package, so
`pip install -e .` falls back to this via `setup.py develop`."""
from setuptools import setup

setup()
